/**
 * @file
 * Throughput bench for the parallel campaign engine.
 *
 * Runs the same supervised campaign serially (--jobs 1) and with the
 * thread-pooled executor (--jobs N) for each campaign kind, reports
 * trials/second and the parallel speedup, and checks on the way that
 * the two runs produced identical tallies (the engine's contract:
 * parallelism changes wall-clock time, never results).
 *
 * Usage: bench_campaign_throughput [trials] [scale] [--jobs N]
 *                                  [--json]
 *   --jobs N  worker threads for the parallel leg (default: all
 *             hardware threads)
 *   --json    also write BENCH_campaign.json with the measurements
 *
 * Speedup scales with physical cores; on a single-core host the
 * parallel leg measures pure executor overhead (expect ~1x).
 */

#include "bench_util.hh"

#include <chrono>
#include <fstream>

#include "arch/fpga/fpga.hh"
#include "common/parallel.hh"
#include "fault/campaign.hh"
#include "fault/supervisor.hh"

namespace {

using namespace mparch;

struct KindResult
{
    std::string kind;
    double serialSeconds = 0.0;
    double parallelSeconds = 0.0;
    std::uint64_t trials = 0;
    bool identical = false;

    double serialRate() const { return trials / serialSeconds; }
    double parallelRate() const { return trials / parallelSeconds; }
    double speedup() const
    {
        return serialSeconds / parallelSeconds;
    }
};

double
seconds(std::chrono::steady_clock::time_point begin,
        std::chrono::steady_clock::time_point end)
{
    return std::chrono::duration<double>(end - begin).count();
}

/** Tallies equal (the corpus makes the check order-sensitive). */
bool
sameResult(const fault::CampaignResult &a,
           const fault::CampaignResult &b)
{
    if (a.trials != b.trials || a.masked != b.masked ||
        a.sdc != b.sdc || a.due != b.due ||
        a.detected != b.detected ||
        a.corpus.size() != b.corpus.size())
        return false;
    for (std::size_t i = 0; i < a.corpus.size(); ++i)
        if (a.corpus[i].maxRel != b.corpus[i].maxRel)
            return false;
    return true;
}

KindResult
benchKind(workloads::Workload &w, fault::CampaignKind kind,
          const std::string &label, const fault::CampaignConfig &config,
          unsigned jobs,
          const std::vector<fault::EngineAllocation> &engines = {})
{
    KindResult out;
    out.kind = label;
    out.trials = config.trials;

    fault::SupervisorConfig serial;
    serial.jobs = 1;
    fault::SupervisorConfig parallel;
    parallel.jobs = jobs;

    const auto t0 = std::chrono::steady_clock::now();
    const auto a = fault::runSupervisedCampaign(
        w, kind, config, serial, fp::OpKind::NumKinds, engines);
    const auto t1 = std::chrono::steady_clock::now();
    const auto b = fault::runSupervisedCampaign(
        w, kind, config, parallel, fp::OpKind::NumKinds, engines);
    const auto t2 = std::chrono::steady_clock::now();

    out.serialSeconds = seconds(t0, t1);
    out.parallelSeconds = seconds(t1, t2);
    out.identical = sameResult(a.result, b.result);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;

    bool json = false;
    unsigned jobs = 0;  // 0 = all hardware threads
    std::vector<char *> positional;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            json = true;
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        else
            positional.push_back(argv[i]);
    }
    int pos_argc = static_cast<int>(positional.size());
    const auto args =
        bench::parseArgs(pos_argc, positional.data(), 400, 0.15);
    jobs = parallel::resolveJobs(jobs);

    bench::banner(
        "Campaign throughput: serial loop vs thread-pooled executor",
        "identical tallies at every job count; speedup bounded by "
        "physical cores (" +
            std::to_string(parallel::hardwareJobs()) + " here)");

    fault::CampaignConfig config;
    config.trials = args.trials;
    config.seed = 29;

    auto w = workloads::makeWorkload("mxm", fp::Precision::Single,
                                     args.scale);
    const fault::GoldenRun golden(*w, config.inputSeed);
    const auto circuit = fpga::synthesize(*w, golden);

    std::vector<KindResult> rows;
    rows.push_back(benchKind(*w, fault::CampaignKind::Memory,
                             "memory", config, jobs));
    rows.push_back(benchKind(*w, fault::CampaignKind::Datapath,
                             "datapath", config, jobs));
    rows.push_back(benchKind(*w, fault::CampaignKind::Persistent,
                             "persistent", config, jobs,
                             circuit.engines));

    Table table({"campaign", "trials", "serial-trials/s",
                 "jobs=" + std::to_string(jobs) + "-trials/s",
                 "speedup", "identical"});
    for (const auto &row : rows) {
        table.row()
            .cell(row.kind)
            .cell(static_cast<double>(row.trials), 0)
            .cell(row.serialRate(), 1)
            .cell(row.parallelRate(), 1)
            .cell(row.speedup(), 2)
            .cell(row.identical ? "yes" : "NO");
    }
    table.print(std::cout);

    bool all_identical = true;
    for (const auto &row : rows)
        all_identical = all_identical && row.identical;
    if (!all_identical)
        std::cout << "FAIL: parallel tallies diverged from serial\n";

    if (json) {
        std::ofstream out("BENCH_campaign.json");
        out << "{\n  \"workload\": \"mxm\",\n  \"trials\": "
            << args.trials << ",\n  \"scale\": " << args.scale
            << ",\n  \"jobs\": " << jobs
            << ",\n  \"hardware_threads\": "
            << parallel::hardwareJobs() << ",\n  \"campaigns\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const auto &row = rows[i];
            out << "    {\"kind\": \"" << row.kind
                << "\", \"serial_s\": " << row.serialSeconds
                << ", \"parallel_s\": " << row.parallelSeconds
                << ", \"serial_trials_per_s\": " << row.serialRate()
                << ", \"parallel_trials_per_s\": "
                << row.parallelRate()
                << ", \"speedup\": " << row.speedup()
                << ", \"identical\": "
                << (row.identical ? "true" : "false") << "}"
                << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::cout << "wrote BENCH_campaign.json\n";
    }
    return all_identical ? 0 : 1;
}
