/**
 * @file
 * Tests for the datapath hook machinery: op counting, stage
 * perturbation, context nesting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "fp/softfloat.hh"
#include "fp/value.hh"

namespace mparch::fp {
namespace {

/** Hook that records every stage visit. */
class RecordingHook : public FpHook
{
  public:
    struct Visit
    {
        OpKind op;
        Stage stage;
        unsigned width;
        std::uint64_t value;
    };

    std::uint64_t
    perturb(OpKind op, Stage stage, unsigned width,
            std::uint64_t value) override
    {
        visits.push_back({op, stage, width, value});
        return value;
    }

    bool
    sawStage(Stage s) const
    {
        for (const auto &v : visits)
            if (v.stage == s)
                return true;
        return false;
    }

    std::vector<Visit> visits;
};

/** Hook that flips one bit at one (op-kind, stage) the first time. */
class OneShotFlip : public FpHook
{
  public:
    OneShotFlip(OpKind op, Stage stage, unsigned bit)
        : op_(op), stage_(stage), bit_(bit)
    {}

    std::uint64_t
    perturb(OpKind op, Stage stage, unsigned width,
            std::uint64_t value) override
    {
        if (!fired_ && op == op_ && stage == stage_ && bit_ < width) {
            fired_ = true;
            return value ^ (1ULL << bit_);
        }
        return value;
    }

    bool fired() const { return fired_; }

  private:
    OpKind op_;
    Stage stage_;
    unsigned bit_;
    bool fired_ = false;
};

TEST(FpContextTest, CountsOpsByKind)
{
    FpContext ctx;
    {
        FpEnvGuard guard(ctx);
        const auto a = FpDouble::fromDouble(1.25);
        const auto b = FpDouble::fromDouble(2.5);
        (void)(a + b);
        (void)(a - b);
        (void)(a * b);
        (void)(a / b);
        (void)fma(a, b, a);
        (void)sqrt(b);
    }
    EXPECT_EQ(ctx.count(OpKind::Add), 1u);
    EXPECT_EQ(ctx.count(OpKind::Sub), 1u);
    EXPECT_EQ(ctx.count(OpKind::Mul), 1u);
    EXPECT_EQ(ctx.count(OpKind::Div), 1u);
    EXPECT_EQ(ctx.count(OpKind::Fma), 1u);
    EXPECT_EQ(ctx.count(OpKind::Sqrt), 1u);
    EXPECT_EQ(ctx.totalOps(), 6u);
}

TEST(FpContextTest, NoContextMeansNoCounting)
{
    EXPECT_EQ(currentContext(), nullptr);
    const auto a = FpSingle::fromDouble(3.0);
    (void)(a * a);  // must not crash without a context
    EXPECT_EQ(currentContext(), nullptr);
}

TEST(FpContextTest, GuardsNest)
{
    FpContext outer, inner;
    FpEnvGuard g1(outer);
    EXPECT_EQ(currentContext(), &outer);
    {
        FpEnvGuard g2(inner);
        EXPECT_EQ(currentContext(), &inner);
        const auto a = FpHalf::fromDouble(1.0);
        (void)(a + a);
    }
    EXPECT_EQ(currentContext(), &outer);
    EXPECT_EQ(inner.count(OpKind::Add), 1u);
    EXPECT_EQ(outer.count(OpKind::Add), 0u);
}

TEST(FpContextTest, ExpCountsConstituentOps)
{
    FpContext ctx;
    {
        FpEnvGuard guard(ctx);
        (void)exp(FpDouble::fromDouble(0.7));
    }
    EXPECT_EQ(ctx.count(OpKind::Exp), 1u);
    // Range reduction + Horner chain runs real FMA/MUL ops.
    EXPECT_GE(ctx.count(OpKind::Fma), 10u);
    EXPECT_GE(ctx.count(OpKind::Mul), 1u);
}

TEST(HookStages, AddVisitsExpectedStages)
{
    FpContext ctx;
    RecordingHook hook;
    ctx.hook = &hook;
    {
        FpEnvGuard guard(ctx);
        (void)(FpDouble::fromDouble(1.5) + FpDouble::fromDouble(2.25));
    }
    EXPECT_TRUE(hook.sawStage(Stage::OperandA));
    EXPECT_TRUE(hook.sawStage(Stage::OperandB));
    EXPECT_TRUE(hook.sawStage(Stage::AlignedSigA));
    EXPECT_TRUE(hook.sawStage(Stage::AlignedSigB));
    EXPECT_TRUE(hook.sawStage(Stage::PreRoundSig));
    EXPECT_TRUE(hook.sawStage(Stage::ExponentLogic));
    EXPECT_TRUE(hook.sawStage(Stage::Result));
    EXPECT_FALSE(hook.sawStage(Stage::ProductLo));
}

TEST(HookStages, MulVisitsProductStages)
{
    FpContext ctx;
    RecordingHook hook;
    ctx.hook = &hook;
    {
        FpEnvGuard guard(ctx);
        (void)(FpDouble::fromDouble(1.5) * FpDouble::fromDouble(2.25));
    }
    EXPECT_TRUE(hook.sawStage(Stage::ProductLo));
    EXPECT_TRUE(hook.sawStage(Stage::ProductHi));
    EXPECT_TRUE(hook.sawStage(Stage::Result));
}

TEST(HookStages, FmaVisitsOperandC)
{
    FpContext ctx;
    RecordingHook hook;
    ctx.hook = &hook;
    {
        FpEnvGuard guard(ctx);
        (void)fma(FpSingle::fromDouble(2.0), FpSingle::fromDouble(3.0),
                  FpSingle::fromDouble(4.0));
    }
    EXPECT_TRUE(hook.sawStage(Stage::OperandC));
    EXPECT_TRUE(hook.sawStage(Stage::ProductLo));
}

TEST(HookFlips, OperandFlipChangesResult)
{
    FpContext ctx;
    OneShotFlip hook(OpKind::Mul, Stage::OperandA, 52);  // top mantissa
    ctx.hook = &hook;
    double corrupted;
    {
        FpEnvGuard guard(ctx);
        corrupted = (FpDouble::fromDouble(1.5) *
                     FpDouble::fromDouble(2.0)).toDouble();
    }
    EXPECT_TRUE(hook.fired());
    EXPECT_NE(corrupted, 3.0);
}

TEST(HookFlips, LowProductBitUsuallyRoundedAway)
{
    // A flip in bit 0 of the 128-bit product of two doubles sits ~53
    // positions below the kept significand: rounding absorbs it.
    FpContext ctx;
    OneShotFlip hook(OpKind::Mul, Stage::ProductLo, 0);
    ctx.hook = &hook;
    double corrupted;
    {
        FpEnvGuard guard(ctx);
        corrupted = (FpDouble::fromDouble(1.0000001) *
                     FpDouble::fromDouble(1.9999999)).toDouble();
    }
    EXPECT_TRUE(hook.fired());
    EXPECT_DOUBLE_EQ(corrupted, 1.0000001 * 1.9999999);
}

TEST(HookFlips, HalfProductFlipMoreVisible)
{
    // In binary16 the same low product bit is only ~11 positions
    // below the kept significand of this product; flipping a mid
    // product bit changes the rounded result.
    FpContext ctx;
    OneShotFlip hook(OpKind::Mul, Stage::ProductLo, 9);
    ctx.hook = &hook;
    std::uint64_t corrupted;
    {
        FpEnvGuard guard(ctx);
        corrupted = (FpHalf::fromDouble(1.5) *
                     FpHalf::fromDouble(1.2001953125)).bits();
    }
    const std::uint64_t clean =
        fpMul(kHalf, fpFromDouble(kHalf, 1.5),
              fpFromDouble(kHalf, 1.2001953125));
    EXPECT_TRUE(hook.fired());
    EXPECT_NE(corrupted, clean);
}

// ---------------------------------------------------------------------
// Hook invariance: installing a hook must observe, never perturb.
//
// The injector relies on a split-brain property of the softfloat core:
// the un-struck majority of operations in a faulty trial run with a
// hook installed but returning every value unchanged, and those must
// be byte-identical to the golden (unhooked) run — otherwise faulty
// and golden outputs differ for reasons other than the injected fault
// and every SDC classification is suspect. Pin it for every op at
// every stage in every format, on a spread of operand patterns.
// ---------------------------------------------------------------------

/** Run every instrumented op on one operand triple; fold the results. */
std::uint64_t
runAllOps(Format f, std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    // Mix with distinct multipliers so results can't cancel in pairs.
    std::uint64_t digest = 0;
    int i = 1;
    for (std::uint64_t r : {
             fpAdd(f, a, b), fpSub(f, a, b), fpMul(f, a, b),
             fpDiv(f, a, b), fpFma(f, a, b, c), fpSqrt(f, a),
             fpExp(f, a), fpLog(f, a),
             fpConvert(kDouble, f, a), fpConvert(kHalf, f, a),
             fpConvert(kBfloat16, f, a), fpConvert(kSingle, f, a)}) {
        digest ^= Rng::mix(r, static_cast<std::uint64_t>(i++));
    }
    return digest;
}

TEST(HookInvariance, NoOpHookIsByteIdenticalToFastPath)
{
    // A default-constructed FpHook is the identity perturbation; the
    // fast path is no context at all (hooked == nullptr short-circuit).
    for (const Format f : {kHalf, kSingle, kDouble, kBfloat16, kTf32}) {
        Rng rng(0x1009 ^ f.totalBits);
        for (int trial = 0; trial < 200; ++trial) {
            const std::uint64_t a = rng.next() & f.valueMask();
            const std::uint64_t b = rng.next() & f.valueMask();
            const std::uint64_t c = rng.next() & f.valueMask();

            const std::uint64_t plain = runAllOps(f, a, b, c);

            FpContext ctx;
            FpHook identity;
            ctx.hook = &identity;
            std::uint64_t hooked;
            {
                FpEnvGuard guard(ctx);
                hooked = runAllOps(f, a, b, c);
            }
            ASSERT_EQ(hooked, plain)
                << "format " << f.totalBits << "-bit, operands " << a
                << " " << b << " " << c;
        }
    }
}

TEST(HookInvariance, RecordingHookIsByteIdenticalToFastPath)
{
    // Same, for a hook that records visits but returns values intact —
    // the shape every trigger-not-yet-met injector has.
    for (const Format f : {kHalf, kSingle, kDouble, kBfloat16, kTf32}) {
        Rng rng(0x77e57 ^ f.totalBits);
        const std::uint64_t a = rng.next() & f.valueMask();
        const std::uint64_t b = rng.next() & f.valueMask();
        const std::uint64_t c = rng.next() & f.valueMask();

        const std::uint64_t plain = runAllOps(f, a, b, c);

        FpContext ctx;
        RecordingHook hook;
        ctx.hook = &hook;
        std::uint64_t hooked;
        {
            FpEnvGuard guard(ctx);
            hooked = runAllOps(f, a, b, c);
        }
        EXPECT_EQ(hooked, plain);
        EXPECT_FALSE(hook.visits.empty());
    }
}

TEST(HookInvariance, SpecialValuesUnperturbed)
{
    // The special-value early exits bypass most datapath stages; make
    // sure the hooked path agrees there too (NaN, infinities, zeros,
    // subnormals, extremes).
    for (const Format f : {kHalf, kSingle, kDouble, kBfloat16, kTf32}) {
        const std::uint64_t patterns[] = {
            0, f.valueMask() >> 1, quietNaN(f), infinity(f, false),
            infinity(f, true), 1, f.manMask(),
            packFields(f, true, 0, 1), maxFinite(f, false),
            fpFromDouble(f, 1.0), fpFromDouble(f, -2.5),
        };
        for (const std::uint64_t a : patterns) {
            for (const std::uint64_t b : patterns) {
                const std::uint64_t plain = runAllOps(f, a, b, b);
                FpContext ctx;
                FpHook identity;
                ctx.hook = &identity;
                std::uint64_t hooked;
                {
                    FpEnvGuard guard(ctx);
                    hooked = runAllOps(f, a, b, b);
                }
                ASSERT_EQ(hooked, plain)
                    << "format " << f.totalBits << "-bit, a=" << a
                    << " b=" << b;
            }
        }
    }
}

TEST(HookFlips, ExponentFlipScalesResult)
{
    FpContext ctx;
    OneShotFlip hook(OpKind::Add, Stage::ExponentLogic, 0);
    ctx.hook = &hook;
    double corrupted;
    {
        FpEnvGuard guard(ctx);
        corrupted = (FpDouble::fromDouble(1.0) +
                     FpDouble::fromDouble(1.0)).toDouble();
    }
    // Flipping exponent bit 0 halves or doubles the magnitude.
    EXPECT_TRUE(corrupted == 1.0 || corrupted == 4.0) << corrupted;
}

} // namespace
} // namespace mparch::fp
