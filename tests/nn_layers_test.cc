/**
 * @file
 * White-box reference tests for the NN layers: the softfloat conv /
 * pool / dense pipeline against naive host-double recomputation, the
 * detector's correlation math, threshold behaviour, and the tensor
 * container.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/digits.hh"
#include "nn/mnistnet.hh"
#include "nn/nn_workloads.hh"
#include "nn/tensor.hh"
#include "nn/yolite.hh"

namespace mparch::nn {
namespace {

using fp::Precision;

TEST(Tensor, ShapeIndexingAndStorage)
{
    Tensor<Precision::Single> t(2, 3, 4);
    EXPECT_EQ(t.channels(), 2u);
    EXPECT_EQ(t.height(), 3u);
    EXPECT_EQ(t.width(), 4u);
    EXPECT_EQ(t.size(), 24u);
    t.at(1, 2, 3) = fp::FpSingle::fromDouble(7.5);
    EXPECT_DOUBLE_EQ(t[(1 * 3 + 2) * 4 + 3].toDouble(), 7.5);
    t.clear();
    EXPECT_DOUBLE_EQ(t.at(1, 2, 3).toDouble(), 0.0);
}

TEST(Tensor, LoadDoublesRoundTripsAndChecksSize)
{
    Tensor<Precision::Double> t(1, 2, 2);
    t.loadDoubles({1.0, 2.5, -3.0, 0.125});
    EXPECT_DOUBLE_EQ(t.at(0, 1, 1).toDouble(), 0.125);
    EXPECT_DEATH(t.loadDoubles({1.0}), "shape mismatch");
}

/**
 * The full double-precision forward pass of MnistNet must match a
 * naive host reimplementation of conv+ReLU+pool+dense on the same
 * weights — a white-box check that the softfloat pipeline computes
 * the network it claims to.
 */
TEST(MnistNetLayers, ForwardMatchesNaiveHostPipeline)
{
    const MnistParams &p = pretrainedMnist();
    DigitGenerator gen(17);
    const DigitSample s = gen.next();

    // Host pipeline.
    std::array<double, kFlat> flat{};
    for (std::size_t f = 0; f < kConvFilters; ++f) {
        for (std::size_t py = 0; py < kPoolOut; ++py) {
            for (std::size_t px = 0; px < kPoolOut; ++px) {
                double best = -1e300;
                for (std::size_t wy = 0; wy < 2; ++wy) {
                    for (std::size_t wx = 0; wx < 2; ++wx) {
                        const std::size_t oy = 2 * py + wy;
                        const std::size_t ox = 2 * px + wx;
                        double acc = p.convB[f];
                        for (std::size_t ky = 0; ky < kKernel; ++ky)
                            for (std::size_t kx = 0; kx < kKernel;
                                 ++kx)
                                acc = std::fma(
                                    p.convW[(f * kKernel + ky) *
                                                kKernel +
                                            kx],
                                    s.pixels[(oy + ky) * kDigitSize +
                                             ox + kx],
                                    acc);
                        best = std::max(best, std::max(0.0, acc));
                    }
                }
                flat[(f * kPoolOut + py) * kPoolOut + px] = best;
            }
        }
    }
    std::array<double, kHidden> hidden{};
    for (std::size_t h = 0; h < kHidden; ++h) {
        double acc = p.fc1B[h];
        for (std::size_t i = 0; i < kFlat; ++i)
            acc = std::fma(p.fc1W[h * kFlat + i], flat[i], acc);
        hidden[h] = std::max(0.0, acc);
    }
    std::array<double, kDigitClasses> want{};
    for (std::size_t c = 0; c < kDigitClasses; ++c) {
        double acc = p.fc2B[c];
        for (std::size_t h = 0; h < kHidden; ++h)
            acc = std::fma(p.fc2W[c * kHidden + h], hidden[h], acc);
        want[c] = acc;
    }

    // Softfloat pipeline at double: bit-comparable modulo the input
    // encoding (exact: pixels are exactly representable doubles).
    MnistNet<Precision::Double> net(p);
    std::vector<fp::FpDouble> image(s.pixels.size());
    for (std::size_t i = 0; i < s.pixels.size(); ++i)
        image[i] = fp::FpDouble::fromDouble(s.pixels[i]);
    std::array<fp::FpDouble, kDigitClasses> logits{};
    net.infer(image, logits);
    for (std::size_t c = 0; c < kDigitClasses; ++c)
        EXPECT_DOUBLE_EQ(logits[c].toDouble(), want[c]) << c;
}

TEST(YoliteLayers, CorrelationMatchesHostDotProduct)
{
    YoliteNet<Precision::Double> net;
    SceneGenerator gen(5);
    const Scene scene = gen.next();
    std::vector<fp::FpDouble> image(scene.pixels.size());
    for (std::size_t i = 0; i < scene.pixels.size(); ++i)
        image[i] = fp::FpDouble::fromDouble(scene.pixels[i]);
    std::vector<fp::FpDouble> out;
    net.detect(image, out);

    // Recompute one cell's class score on the host.
    const std::vector<double> bank = yoliteFilterBank();
    const std::size_t cell = 4;  // centre cell
    const std::size_t cy = cell / kGrid, cx = cell % kGrid;
    for (std::size_t cls = 0; cls < kYoliteClasses; ++cls) {
        double best = -1e300;
        for (std::size_t my = 0; my < 4; ++my) {
            for (std::size_t mx = 0; mx < 4; ++mx) {
                const std::size_t y = 4 * cy + my;
                const std::size_t x = 4 * cx + mx;
                double acc = 0.0;
                for (std::size_t ky = 0; ky < kShapeSize; ++ky)
                    for (std::size_t kx = 0; kx < kShapeSize; ++kx)
                        acc = std::fma(
                            bank[(cls * kShapeSize + ky) *
                                     kShapeSize +
                                 kx],
                            scene
                                .pixels[(y + ky) * kSceneSize + x +
                                        kx],
                            acc);
                best = std::max(best, acc);
            }
        }
        EXPECT_NEAR(out[cell * kCellValues + cls].toDouble(), best,
                    1e-12)
            << cls;
    }
}

TEST(YoliteLayers, ThresholdSeparatesObjectsFromBackground)
{
    // A clean scene with one object: the object's cell must score
    // above threshold, empty corner cells below.
    YoliteNet<Precision::Double> net;
    Scene scene;  // hand-built: one square at (2, 2)
    const char *shape = SceneGenerator::shapes()[0];
    for (std::size_t ky = 0; ky < kShapeSize; ++ky)
        for (std::size_t kx = 0; kx < kShapeSize; ++kx)
            if (shape[ky * kShapeSize + kx] == '#')
                scene.pixels[(2 + ky) * kSceneSize + 2 + kx] = 1.0;

    std::vector<fp::FpDouble> image(scene.pixels.size());
    for (std::size_t i = 0; i < scene.pixels.size(); ++i)
        image[i] = fp::FpDouble::fromDouble(scene.pixels[i]);
    std::vector<fp::FpDouble> out;
    net.detect(image, out);
    std::array<double, kYoliteOut> host{};
    for (std::size_t i = 0; i < kYoliteOut; ++i)
        host[i] = out[i].toDouble();

    const double threshold = yoliteThreshold();
    const auto dets = decodeDetections(host, threshold);
    ASSERT_EQ(dets.size(), 1u);
    EXPECT_EQ(dets[0].cls, 0u);
    EXPECT_EQ(dets[0].cell, 0u);  // top-left grid cell
    EXPECT_EQ(dets[0].pos, 2 * static_cast<long>(kMapSize) + 2);
    EXPECT_GT(dets[0].score, threshold);
}

TEST(YoliteLayers, EmptySceneYieldsNoDetections)
{
    YoliteNet<Precision::Single> net;
    std::vector<fp::FpSingle> image(kSceneSize * kSceneSize);
    for (auto &px : image)
        px = fp::FpSingle::fromDouble(0.0);
    std::vector<fp::FpSingle> out;
    net.detect(image, out);
    std::array<double, kYoliteOut> host{};
    for (std::size_t i = 0; i < kYoliteOut; ++i)
        host[i] = out[i].toDouble();
    EXPECT_TRUE(decodeDetections(host, yoliteThreshold()).empty());
}

TEST(DigitsLayers, JitterStaysWithinOnePixel)
{
    // Sample pixels may only come from the prototype shifted by at
    // most one pixel plus bounded noise: the ink centre of mass must
    // stay close to the prototype's.
    DigitGenerator gen(23, /*noise=*/0.0);
    for (std::size_t label = 0; label < kDigitClasses; ++label) {
        const DigitSample s = gen.sampleOf(label);
        const char *glyph = DigitGenerator::glyphs()[label];
        double sx = 0, sy = 0, sn = 0, gx = 0, gy = 0, gn = 0;
        for (std::size_t y = 0; y < kDigitSize; ++y) {
            for (std::size_t x = 0; x < kDigitSize; ++x) {
                const double ink = s.pixels[y * kDigitSize + x];
                sx += ink * static_cast<double>(x);
                sy += ink * static_cast<double>(y);
                sn += ink;
                const double g =
                    glyph[y * kDigitSize + x] == '#' ? 1.0 : 0.0;
                gx += g * static_cast<double>(x);
                gy += g * static_cast<double>(y);
                gn += g;
            }
        }
        EXPECT_NEAR(sx / sn, gx / gn, 1.4) << label;
        EXPECT_NEAR(sy / sn, gy / gn, 1.4) << label;
    }
}

} // namespace
} // namespace mparch::nn
