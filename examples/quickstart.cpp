/**
 * @file
 * Quickstart: evaluate the reliability of one benchmark on one
 * architecture across every precision it supports, using the
 * top-level study API.
 *
 *   $ ./quickstart [arch] [workload]
 *   arch     fpga | xeon-phi | gpu       (default gpu)
 *   workload mxm | lavamd | lud | micro-add | micro-mul | micro-fma
 *            | mnist | yolite            (default mxm)
 *
 * The report lists, per precision: SDC/DUE FIT (arbitrary units,
 * like the paper), the modelled execution time, the MEBF
 * reliability-performance tradeoff, the measured propagation
 * probabilities (datapath AVF and CAROL-FI-style PVF) and the
 * FIT-reduction-vs-TRE curve.
 */

#include <cstring>
#include <iostream>

#include "core/study.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;

    core::StudyConfig config;
    config.arch = core::Architecture::Gpu;
    config.workload = "mxm";
    config.trials = 300;
    config.scale = 0.2;

    if (argc > 1) {
        if (!std::strcmp(argv[1], "fpga"))
            config.arch = core::Architecture::Fpga;
        else if (!std::strcmp(argv[1], "xeon-phi"))
            config.arch = core::Architecture::XeonPhi;
        else if (!std::strcmp(argv[1], "gpu"))
            config.arch = core::Architecture::Gpu;
        else
            fatal("unknown architecture '", argv[1],
                  "' (want fpga | xeon-phi | gpu)");
    }
    if (argc > 2)
        config.workload = argv[2];

    std::cout << "Running " << config.workload << " on the simulated "
              << core::architectureName(config.arch) << " with "
              << config.trials
              << " injection trials per campaign...\n\n";

    const core::StudyResult result = core::runStudy(config);
    result.printReport(std::cout);

    std::cout << "\nReading the report:\n"
              << " - fit-sdc/fit-due are in arbitrary units; compare "
                 "across precisions, not devices.\n"
              << " - mebf = 1 / (FIT x time): correct executions "
                 "completed per failure.\n"
              << " - the TRE table shows how much FIT remains once "
                 "output deviations up to the\n"
              << "   tolerated relative error count as acceptable "
                 "(the paper's criticality analysis).\n";
    return 0;
}
