file(REMOVE_RECURSE
  "CMakeFiles/ablation_injection_sites.dir/ablation_injection_sites.cpp.o"
  "CMakeFiles/ablation_injection_sites.dir/ablation_injection_sites.cpp.o.d"
  "ablation_injection_sites"
  "ablation_injection_sites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_injection_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
