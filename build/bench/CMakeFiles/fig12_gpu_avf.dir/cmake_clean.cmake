file(REMOVE_RECURSE
  "CMakeFiles/fig12_gpu_avf.dir/fig12_gpu_avf.cpp.o"
  "CMakeFiles/fig12_gpu_avf.dir/fig12_gpu_avf.cpp.o.d"
  "fig12_gpu_avf"
  "fig12_gpu_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_gpu_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
