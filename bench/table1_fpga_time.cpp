/**
 * @file
 * Reproduces Table 1: benchmark execution times on the Zynq-7000.
 *
 * Absolute seconds differ from the paper (our problem sizes are
 * scaled down for Monte Carlo turnaround); the comparison target is
 * the ratio pattern: times shrink from double to single, and MxM in
 * half is slightly *slower* than single (half forgoes the DSP
 * cascade), while MNIST's half and single are on par.
 */

#include "bench_util.hh"

#include "arch/fpga/fpga.hh"
#include "arch/fpga/params.hh"
#include "fault/campaign.hh"

namespace {

using namespace mparch;

/** Paper Table 1 reference values in seconds. */
double
paperTime(const std::string &w, fp::Precision p)
{
    if (w == "mnist") {
        return p == fp::Precision::Double ? 0.011 : 0.009;
    }
    switch (p) {
      case fp::Precision::Double: return 2.730;
      case fp::Precision::Single: return 2.100;
      case fp::Precision::Half:   return 2.310;
      default:                    return 0.0;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 0, 0.3);
    bench::banner(
        "Table 1: Zynq-7000 execution time [s] (model vs paper)",
        "time drops double->single; MxM half slightly slower than "
        "single");

    Table table({"benchmark", "precision", "model[s]",
                 "model(norm to double)", "paper[s]",
                 "paper(norm to double)"});
    for (const std::string name : {"mnist", "mxm"}) {
        double model_double = 0.0;
        for (auto p : fp::allPrecisions) {
            auto w = nn::makeAnyWorkload(name, p, args.scale);
            const fault::GoldenRun golden(*w, 99);
            const auto circuit = fpga::synthesize(*w, golden);
            const double t =
                circuit.cycles / fpga::clockHz(p);
            if (p == fp::Precision::Double)
                model_double = t;
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(p)))
                .cell(t, 6)
                .cell(t / model_double, 3)
                .cell(paperTime(name, p), 3)
                .cell(paperTime(name, p) /
                          paperTime(name, fp::Precision::Double),
                      3);
        }
    }
    table.print(std::cout);

    for (auto p : fp::allPrecisions)
        bench::registerKernelTiming("mxm", p, args.scale);
    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
