/**
 * @file
 * Machine-checked shape targets.
 *
 * The paper's FIT values are in arbitrary units, so its actual
 * claims are *shapes*: orderings, ratios, crossovers and growing
 * shares. Historically those lived as prose in bench banners and
 * EXPERIMENTS.md; a ShapeCheck turns each one into an executable
 * predicate over an experiment's ResultDoc with an explicit
 * pass/fail verdict and a human-readable "observed" trace.
 *
 * The vocabulary:
 *  - decreasesAlong / increasesAlong / shareGrows: monotone series
 *    (with optional relative slack);
 *  - exceeds: scalar A > factor * scalar B;
 *  - ratioWithin: A / B inside [lo, hi];
 *  - nearlyEqual: |A - B| <= absolute tolerance;
 *  - flatWithin: max/min of a series below a ratio bound;
 *  - allBelow / allAbove: series against a constant bound;
 *  - crossoverAt: series A starts at-or-above series B and ends
 *    below it, with the crossing index inside a window;
 *  - custom: escape hatch for one-off predicates.
 *
 * Series are addressed declaratively with a Selector — table name,
 * value column, and equality filters on key columns — so checks
 * read like the prose they replace.
 */

#ifndef MPARCH_REPORT_SHAPECHECK_HH
#define MPARCH_REPORT_SHAPECHECK_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "report/document.hh"

namespace mparch::report {

/**
 * Addresses a numeric series inside a ResultDoc: the @p column cells
 * of every row of @p table whose key columns match @p where (in row
 * order). An empty table name means the document's first table.
 */
struct Selector
{
    std::string column;
    std::string table;
    std::vector<std::pair<std::string, std::string>> where;

    /** Human-readable form, e.g. "fit-sdc[benchmark=mnist]". */
    std::string describe() const;
};

/** Build a selector: column, optional filters, optional table. */
Selector sel(std::string column,
             std::vector<std::pair<std::string, std::string>> where =
                 {},
             std::string table = {});

/**
 * Extract the selected series.
 *
 * @param error On failure (missing table/column, text cell, no
 *              matching rows) receives the reason; the returned
 *              series is empty then.
 */
std::vector<double> extract(const ResultDoc &doc,
                            const Selector &selector,
                            std::string *error);

/** Outcome of evaluating one predicate. */
struct CheckOutcome
{
    bool pass = false;
    std::string observed;
};

/** One executable shape target. */
struct ShapeCheck
{
    std::string id;           ///< stable identifier ("fit-drops")
    std::string description;  ///< the prose claim
    std::function<CheckOutcome(const ResultDoc &)> eval;
};

/** Evaluate one check into a document verdict. */
CheckVerdict evaluate(const ShapeCheck &check, const ResultDoc &doc);

/** Evaluate a batch, appending verdicts to @p doc. */
void evaluateAll(const std::vector<ShapeCheck> &checks,
                 ResultDoc &doc);

/** Generic predicate (the other constructors build on this). */
ShapeCheck custom(std::string id, std::string description,
                  std::function<CheckOutcome(const ResultDoc &)> fn);

/**
 * Series is strictly decreasing, modulo relative slack: each element
 * must satisfy v[i+1] < v[i] * (1 + slack). Needs >= 2 elements.
 */
ShapeCheck decreasesAlong(std::string id, std::string description,
                          Selector series, double slack = 0.0);

/** Series is strictly increasing (v[i+1] > v[i] * (1 - slack)). */
ShapeCheck increasesAlong(std::string id, std::string description,
                          Selector series, double slack = 0.0);

/**
 * A share (fraction in [0, 1]) grows along the series — the paper's
 * "critical share grows as precision shrinks" claims. Identical
 * monotonicity test to increasesAlong plus a range sanity check.
 */
ShapeCheck shareGrows(std::string id, std::string description,
                      Selector series, double slack = 0.0);

/** Scalar A exceeds factor * scalar B. Selectors must be scalar
 *  (exactly one matching row). */
ShapeCheck exceeds(std::string id, std::string description,
                   Selector a, Selector b, double factor = 1.0);

/** Scalar ratio A / B lies within [lo, hi]. */
ShapeCheck ratioWithin(std::string id, std::string description,
                       Selector numerator, Selector denominator,
                       double lo, double hi);

/** |A - B| <= tolerance (scalars). */
ShapeCheck nearlyEqual(std::string id, std::string description,
                       Selector a, Selector b, double tolerance);

/** max(series) / min(series) <= maxRatio ("roughly flat"). */
ShapeCheck flatWithin(std::string id, std::string description,
                      Selector series, double maxRatio);

/** Every element of the series is strictly below @p bound. */
ShapeCheck allBelow(std::string id, std::string description,
                    Selector series, double bound);

/** Every element of the series is strictly above @p bound. */
ShapeCheck allAbove(std::string id, std::string description,
                    Selector series, double bound);

/**
 * Series A starts at-or-above series B and crosses below it exactly
 * where the paper says: the first index i with A[i] < B[i] must lie
 * in [loIndex, hiIndex]. Both series must have equal length >= 2.
 */
ShapeCheck crossoverAt(std::string id, std::string description,
                       Selector a, Selector b, std::size_t loIndex,
                       std::size_t hiIndex);

} // namespace mparch::report

#endif // MPARCH_REPORT_SHAPECHECK_HH
