#include "arch/gpu/regfile.hh"

#include "arch/gpu/params.hh"
#include "common/rng.hh"

namespace mparch::gpu {

using fp::Precision;
using workloads::MicroOp;

namespace {

/** Chain constants shared with MicroWorkload (see micro.hh). */
constexpr double kMulK = 1.0009765625;
constexpr double kAddK = 0.0009765625;
constexpr double kFmaM = 0.9990234375;
constexpr double kFmaA = 0.001708984375;

/** One dependent-chain lane state. */
template <Precision P>
struct Lane
{
    fp::Fp<P> x;
    fp::Fp<P> k1, k2;

    void
    init(double x0, MicroOp op)
    {
        x = fp::Fp<P>::fromDouble(x0);
        switch (op) {
          case MicroOp::Add:
            k1 = fp::Fp<P>::fromDouble(kAddK);
            break;
          case MicroOp::Mul:
            k1 = fp::Fp<P>::fromDouble(kMulK);
            break;
          case MicroOp::Fma:
            k1 = fp::Fp<P>::fromDouble(kFmaM);
            k2 = fp::Fp<P>::fromDouble(kFmaA);
            break;
        }
    }

    void
    step(MicroOp op)
    {
        switch (op) {
          case MicroOp::Add: x = x + k1; break;
          case MicroOp::Mul: x = x * k1; break;
          case MicroOp::Fma: x = fma(x, k1, k2); break;
        }
    }
};

/**
 * Run a chain with an optional flip of (target value, bit) after
 * @p flip_at operations; returns the final bits.
 */
template <Precision P>
std::uint64_t
runLane(MicroOp op, double x0, std::size_t chain_len,
        std::size_t flip_at, int flip_target, unsigned flip_bit)
{
    Lane<P> lane;
    lane.init(x0, op);
    for (std::size_t i = 0; i < chain_len; ++i) {
        if (i == flip_at) {
            switch (flip_target) {
              case 0:
                lane.x.setBits(flipBit(lane.x.bits(), flip_bit));
                break;
              case 1:
                lane.k1.setBits(flipBit(lane.k1.bits(), flip_bit));
                break;
              case 2:
                lane.k2.setBits(flipBit(lane.k2.bits(), flip_bit));
                break;
              default:
                break;  // no flip
            }
        }
        lane.step(op);
    }
    return lane.x.bits();
}

/**
 * The thread's 32-bit register allocation map: which (value, bit)
 * a flat register-bit index corresponds to, or "dead".
 *
 * Layout (bit offsets inside kThreadRegs x 32 bits):
 *   double:  x -> [0,64),  k1 -> [64,128), k2(fma) -> [128,192)
 *   single:  x -> [0,32),  k1 -> [32,64),  k2(fma) -> [64,96)
 *   half2:   lane A x/k1/k2 packed with lane B's in the same
 *            registers: xA [0,16) xB [16,32) k1A [32,48) ...
 */
struct RegHit
{
    int lane = 0;        ///< 0 = lane A, 1 = lane B (half2 only)
    int target = -1;     ///< 0 = x, 1 = k1, 2 = k2, -1 = dead
    unsigned bit = 0;    ///< bit within the value
};

RegHit
mapRegisterBit(Precision p, MicroOp op, unsigned flat_bit)
{
    const unsigned value_bits = fp::formatOf(p).totalBits;
    const int live_values = op == MicroOp::Fma ? 3 : 2;
    RegHit hit;
    if (fp::formatOf(p).totalBits == 16) {
        // Packed: value v occupies [v*32, v*32+32), lane A low half.
        const unsigned slot = flat_bit / 32;
        const unsigned within = flat_bit % 32;
        if (slot >= static_cast<unsigned>(live_values))
            return hit;
        hit.target = static_cast<int>(slot);
        hit.lane = within >= 16 ? 1 : 0;
        hit.bit = within % 16;
        return hit;
    }
    const unsigned slot = flat_bit / value_bits;
    if (slot >= static_cast<unsigned>(live_values))
        return hit;
    hit.target = static_cast<int>(slot);
    hit.bit = flat_bit % value_bits;
    return hit;
}

template <Precision P>
RegFileAvf
campaign(MicroOp op, std::uint64_t trials, std::uint64_t seed,
         std::size_t chain_len)
{
    Rng rng(seed);
    RegFileAvf result;
    const unsigned alloc_bits = kThreadRegs * 32;
    const double x0a = 1.371;
    const double x0b = 1.629;

    const std::uint64_t golden_a = runLane<P>(
        op, x0a, chain_len, chain_len, -1, 0);
    const std::uint64_t golden_b =
        fp::formatOf(P).totalBits == 16
            ? runLane<P>(op, x0b, chain_len, chain_len, -1, 0)
            : 0;

    for (std::uint64_t t = 0; t < trials; ++t) {
        ++result.trials;
        const auto flat_bit =
            static_cast<unsigned>(rng.below(alloc_bits));
        const auto flip_at =
            static_cast<std::size_t>(rng.below(chain_len));
        const RegHit hit = mapRegisterBit(P, op, flat_bit);
        if (hit.target < 0)
            continue;  // dead register: architecturally masked
        ++result.liveHits;
        const double x0 = hit.lane == 0 ? x0a : x0b;
        const std::uint64_t golden =
            hit.lane == 0 ? golden_a : golden_b;
        const std::uint64_t corrupted = runLane<P>(
            op, x0, chain_len, flip_at, hit.target, hit.bit);
        if (corrupted != golden)
            ++result.sdc;
    }
    return result;
}

} // namespace

RegFileAvf
measureRegFileAvf(MicroOp op, Precision p, std::uint64_t trials,
                  std::uint64_t seed, std::size_t chain_len)
{
    switch (p) {
      case Precision::Double:
        return campaign<Precision::Double>(op, trials, seed,
                                           chain_len);
      case Precision::Single:
        return campaign<Precision::Single>(op, trials, seed,
                                           chain_len);
      case Precision::Half:
        return campaign<Precision::Half>(op, trials, seed, chain_len);
      case Precision::Bfloat16:
        return campaign<Precision::Bfloat16>(op, trials, seed,
                                             chain_len);
    }
    return {};
}

} // namespace mparch::gpu
