#include "table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace mparch {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MPARCH_ASSERT(!headers_.empty(), "a table needs at least one column");
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &text)
{
    MPARCH_ASSERT(!rows_.empty(), "call row() before cell()");
    MPARCH_ASSERT(rows_.back().size() < headers_.size(),
                  "row has more cells than headers");
    rows_.back().push_back(text);
    return *this;
}

Table &
Table::cell(double value, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << value;
    return cell(os.str());
}

Table &
Table::cell(std::int64_t value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[c])) << text;
        }
        os << '\n';
    };

    emitRow(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &text) {
        if (text.find_first_of(",\"\n") == std::string::npos)
            return text;
        std::string out = "\"";
        for (char ch : text) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << quote(cells[c]);
        os << '\n';
    };
    emitRow(headers_);
    for (const auto &row : rows_)
        emitRow(row);
}

} // namespace mparch
