/**
 * @file
 * include-hygiene: stable include structure across the tree.
 *
 * Three mechanical conventions that keep the include graph healthy:
 * every header is guarded (an MPARCH_*-named guard, matching the
 * tree's style — double inclusion otherwise breaks ODR silently);
 * quoted includes are root-relative (a "../foo.hh" include couples a
 * file to its directory placement and breaks when code moves, which
 * this project does freely); and each .cc includes its own header
 * first, which proves every public header is self-contained — the
 * classic way a missing transitive include hides until some
 * unrelated reordering exposes it.
 */

#include "analysis/rules.hh"

#include <algorithm>

namespace mparch::analysis {

namespace {

class IncludeHygieneRule final : public Rule
{
  public:
    const char *name() const override { return "include-hygiene"; }

    const char *
    summary() const override
    {
        return "MPARCH_* include guards, root-relative includes, "
               "self-include-first for .cc files";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const
        override
    {
        checkRelativeIncludes(file, out);
        if (file.isHeader())
            checkGuard(file, out);
        else
            checkSelfIncludeFirst(file, out);
    }

  private:
    void
    emit(const SourceFile &file, unsigned line, unsigned col,
         std::string message, std::string hint,
         std::vector<Finding> &out) const
    {
        Finding f;
        f.rule = name();
        f.path = file.path;
        f.line = line;
        f.col = col;
        f.message = std::move(message);
        f.hint = std::move(hint);
        out.push_back(std::move(f));
    }

    void
    checkRelativeIncludes(const SourceFile &file,
                          std::vector<Finding> &out) const
    {
        const auto &code = file.code;
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            if (code[i].kind != TokKind::Directive ||
                code[i].text != "include")
                continue;
            const Token &target = code[i + 1];
            const std::string &spelling = target.text;
            if (spelling.find("..") != std::string::npos)
                emit(file, target.line, target.col,
                     "parent-relative include " + spelling +
                         " couples the file to its directory "
                         "placement",
                     "include root-relative, e.g. \"fp/softfloat.hh\"",
                     out);
        }
    }

    void
    checkGuard(const SourceFile &file,
               std::vector<Finding> &out) const
    {
        const auto &code = file.code;
        if (code.empty())
            return;
        const Token &first = code.front();
        if (first.kind == TokKind::Directive && first.text == "pragma")
            return;  // #pragma once accepted, though guards are house
                     // style
        const bool guarded =
            first.kind == TokKind::Directive &&
            first.text == "ifndef" && code.size() >= 4 &&
            code[1].kind == TokKind::Identifier &&
            code[2].kind == TokKind::Directive &&
            code[2].text == "define" &&
            code[3].kind == TokKind::Identifier &&
            code[3].text == code[1].text;
        if (!guarded) {
            emit(file, first.line, first.col,
                 "header without an include guard as its first "
                 "directive",
                 "open with #ifndef MPARCH_..._HH / #define (same "
                 "name) and close with #endif",
                 out);
            return;
        }
        if (code[1].text.rfind("MPARCH_", 0) != 0)
            emit(file, code[1].line, code[1].col,
                 "include guard '" + code[1].text +
                     "' does not follow the MPARCH_<PATH>_HH "
                     "convention",
                 "derive the guard from the root-relative path, e.g. "
                 "MPARCH_FP_SOFTFLOAT_HH",
                 out);
    }

    void
    checkSelfIncludeFirst(const SourceFile &file,
                          std::vector<Finding> &out) const
    {
        const std::string own = file.stem() + ".hh";
        const auto quoted = file.quotedIncludes();
        const bool hasOwn =
            std::any_of(quoted.begin(), quoted.end(),
                        [&](const std::string &inc) {
                            return inc == own ||
                                   (inc.size() > own.size() &&
                                    inc.compare(inc.size() -
                                                    own.size() - 1,
                                                own.size() + 1,
                                                "/" + own) == 0);
                        });
        if (!hasOwn)
            return;  // no companion header (mains, tests)
        const auto &code = file.code;
        for (std::size_t i = 0; i + 1 < code.size(); ++i) {
            if (code[i].kind != TokKind::Directive ||
                code[i].text != "include")
                continue;
            const Token &target = code[i + 1];
            std::string spelling = target.text;
            if (target.kind == TokKind::String && spelling.size() >= 2)
                spelling = spelling.substr(1, spelling.size() - 2);
            const bool isOwn =
                spelling == own ||
                (spelling.size() > own.size() &&
                 spelling.compare(spelling.size() - own.size() - 1,
                                  own.size() + 1, "/" + own) == 0);
            if (!isOwn)
                emit(file, target.line, target.col,
                     "the companion header " + own +
                         " must be the first include",
                     "self-include-first proves the header is "
                     "self-contained",
                     out);
            return;  // only the first include matters
        }
    }
};

} // namespace

const Rule &
includeHygieneRule()
{
    static const IncludeHygieneRule rule;
    return rule;
}

} // namespace mparch::analysis
