# Empty dependencies file for ext_bfloat16.
# This may be replaced when dependencies are built.
