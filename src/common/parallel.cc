#include "common/parallel.hh"

namespace mparch::parallel {

unsigned
hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
resolveJobs(unsigned requested)
{
    return requested ? requested : hardwareJobs();
}

ThreadPool::ThreadPool(unsigned workers)
{
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { loop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::start(std::function<void(unsigned)> job)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        job_ = std::move(job);
        running_ = workers();
        ++generation_;
    }
    wake_.notify_all();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] { return running_ == 0; });
}

void
ThreadPool::loop(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::function<void(unsigned)> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            job = job_;
        }
        job(worker);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--running_ == 0)
                done_.notify_all();
        }
    }
}

} // namespace mparch::parallel
