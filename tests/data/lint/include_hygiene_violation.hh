// Fixture: header with no include guard and a parent-relative
// include.

#include "../common/rng.hh"

namespace fixture {

inline int
answer()
{
    return 42;
}

} // namespace fixture
