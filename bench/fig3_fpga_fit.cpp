/**
 * @file
 * Reproduces Figure 3: FIT rate of MxM and MNIST on the FPGA, with
 * MNIST split into critical (classification changed) and tolerable
 * errors. No DUEs occur, matching the paper.
 *
 * Shape targets: FIT shrinks with precision for both designs; the
 * critical share of MNIST errors grows as precision shrinks (paper:
 * 5% double, 14% single, 20% half).
 *
 * Known deviation (EXPERIMENTS.md): the paper measures MNIST's FIT
 * *below* MxM's despite more resources, crediting CNN fault masking;
 * our operator-level config-fault model reproduces the masking in the
 * criticality split but not the full 20x per-gate AVF gap, so our
 * MNIST FIT lands near (not below) MxM's.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 300, 0.3);
    bench::banner("Figure 3: FPGA FIT of MxM and MNIST (a.u.)",
                  "FIT drops with precision; MNIST critical share "
                  "grows 5%->14%->20% as precision shrinks; no DUEs");

    Table table({"benchmark", "precision", "fit-sdc(a.u.)",
                 "fit-due(a.u.)", "critical-frac", "tolerable-frac",
                 "paper-critical"});
    const double paper_critical[3] = {0.05, 0.14, 0.20};
    for (const std::string name : {"mxm", "mnist"}) {
        const auto result =
            bench::study(core::Architecture::Fpga, name, args);
        std::size_t i = 0;
        for (const auto &row : result.rows) {
            const double critical = row.severity.criticalChange +
                                    row.severity.detectionChange;
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(row.precision)))
                .cell(row.fitSdc, 0)
                .cell(row.fitDue, 0)
                .cell(critical, 3)
                .cell(row.severity.tolerable, 3)
                .cell(name == "mnist" ? paper_critical[i] : 1.0, 2);
            ++i;
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
