file(REMOVE_RECURSE
  "CMakeFiles/fp_random_formats_test.dir/fp_random_formats_test.cc.o"
  "CMakeFiles/fp_random_formats_test.dir/fp_random_formats_test.cc.o.d"
  "fp_random_formats_test"
  "fp_random_formats_test.pdb"
  "fp_random_formats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_random_formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
