/**
 * @file
 * MxM / GEMM benchmark.
 *
 * Dense matrix multiplication C = A x B, the paper's cornerstone
 * compute kernel (Section 3.1): a pure FMA chain, memory-bound in the
 * paper's non-tiled GPU form. The same source runs in double, single
 * and half precision via the Fp<P> value type.
 */

#ifndef MPARCH_WORKLOADS_MXM_HH
#define MPARCH_WORKLOADS_MXM_HH

#include <algorithm>
#include <cmath>

#include "workloads/workload.hh"

namespace mparch::workloads {

/** Matrix multiplication at precision P. */
template <fp::Precision P>
class MxMWorkload : public Workload
{
  public:
    using Value = fp::Fp<P>;

    /** @param scale Problem-size knob; 1.0 means a 40x40 multiply. */
    explicit MxMWorkload(double scale = 1.0)
    {
        n_ = std::max<std::size_t>(
            8, static_cast<std::size_t>(std::lround(
                   40.0 * std::cbrt(std::max(scale, 1e-3)))));
        a_.resize(n_ * n_);
        b_.resize(n_ * n_);
        c_.resize(n_ * n_);
    }

    std::string name() const override { return "mxm"; }

    fp::Precision precision() const override { return P; }

    std::unique_ptr<Workload>
    clone() const override
    {
        return std::make_unique<MxMWorkload<P>>(*this);
    }

    /** Matrix dimension. */
    std::size_t dim() const { return n_; }

    void
    reset(std::uint64_t input_seed) override
    {
        Rng rng(input_seed);
        // Entries in [-1, 1): row sums stay far from half's max.
        for (auto &v : a_)
            v = Value::fromDouble(rng.uniform(-1.0, 1.0));
        for (auto &v : b_)
            v = Value::fromDouble(rng.uniform(-1.0, 1.0));
        std::fill(c_.begin(), c_.end(), Value{});
    }

    void
    execute(ExecutionEnv &env) override
    {
        for (std::size_t i = 0; i < n_; ++i) {
            env.tick();
            if (env.aborted())
                return;
            for (std::size_t j = 0; j < n_; ++j) {
                Value acc{};
                for (std::size_t k = 0; k < n_; ++k)
                    acc = fma(a_[i * n_ + k], b_[k * n_ + j], acc);
                c_[i * n_ + j] = acc;
            }
        }
    }

    std::vector<BufferView>
    buffers() override
    {
        return {makeBufferView("A", a_), makeBufferView("B", b_),
                makeBufferView("C", c_)};
    }

    BufferView output() override { return makeBufferView("C", c_); }

    KernelDesc
    desc() const override
    {
        KernelDesc d;
        d.liveValues = 3;          // acc + streamed a/b elements
        d.inputStreams = 2;
        // Non-tiled GEMM re-reads operands O(n) times: memory-bound.
        d.arithmeticIntensity = 0.5;
        d.usesTranscendental = false;
        d.regularAccess = true;
        d.branchDensity = 0.04;
        return d;
    }

  private:
    std::size_t n_;
    std::vector<Value> a_, b_, c_;
};

} // namespace mparch::workloads

#endif // MPARCH_WORKLOADS_MXM_HH
