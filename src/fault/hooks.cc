#include "fault/hooks.hh"

#include "fp/format.hh"

namespace mparch::fault {

using fp::OpKind;
using fp::Stage;

const std::array<Stage, 10> &
stagesFor(OpKind kind, std::size_t &count)
{
    static const std::array<Stage, 10> add = {
        Stage::OperandA,    Stage::OperandB,
        Stage::AlignedSigA, Stage::AlignedSigB,
        Stage::PreRoundSig, Stage::ExponentLogic, Stage::Result,
    };
    static const std::array<Stage, 10> mul = {
        Stage::OperandA,    Stage::OperandB,   Stage::ProductLo,
        Stage::ProductHi,   Stage::PreRoundSig,
        Stage::ExponentLogic, Stage::Result,
    };
    static const std::array<Stage, 10> fma = {
        Stage::OperandA,    Stage::OperandB,    Stage::OperandC,
        Stage::ProductLo,   Stage::ProductHi,   Stage::AlignedSigA,
        Stage::PreRoundSig, Stage::ExponentLogic, Stage::Result,
    };
    static const std::array<Stage, 10> unary = {
        Stage::OperandA,    Stage::PreRoundSig,
        Stage::ExponentLogic, Stage::Result,
    };
    static const std::array<Stage, 10> div = {
        Stage::OperandA,    Stage::OperandB,   Stage::PreRoundSig,
        Stage::ExponentLogic, Stage::Result,
    };
    static const std::array<Stage, 10> boundary = {
        Stage::OperandA,
    };

    switch (kind) {
      case OpKind::Add:
      case OpKind::Sub:
        count = 7;
        return add;
      case OpKind::Mul:
        count = 7;
        return mul;
      case OpKind::Fma:
        count = 9;
        return fma;
      case OpKind::Div:
        count = 5;
        return div;
      case OpKind::Sqrt:
      case OpKind::Convert:
        count = 4;
        return unary;
      case OpKind::Exp:
      default:
        count = 1;
        return boundary;
    }
}

unsigned
stageWidthEstimate(Stage stage, fp::Format f)
{
    const unsigned man = f.manBits;
    switch (stage) {
      case Stage::OperandA:
      case Stage::OperandB:
      case Stage::OperandC:
      case Stage::Result:
        return f.totalBits;
      case Stage::AlignedSigA:
      case Stage::AlignedSigB:
      case Stage::PreRoundSig:
        return man + 5;
      case Stage::ProductLo:
      case Stage::ProductHi: {
        // Split the 2*(man+1)-bit multiplier array across the two
        // product windows.
        const unsigned total = 2 * (man + 1);
        return stage == Stage::ProductLo ? std::min(total, 64u)
                                         : (total > 64 ? total - 64 : 1);
      }
      case Stage::ExponentLogic:
        return f.expBits + 2;
      default:
        return f.totalBits;
    }
}

} // namespace mparch::fault
