/**
 * @file
 * Thin shim over the "bench_campaign_throughput" experiment registry
 * entry: serial loop vs thread-pooled campaign executor, with the
 * engine's identical-tallies contract as a shape check (a divergence
 * fails the binary). All logic lives in src/report/; this binary
 * preserves the historical name, CLI (--jobs N, --json writing
 * BENCH_campaign.json) and exit-status contract.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    return mparch::bench::shimMain(argc, argv,
                                   "bench_campaign_throughput",
                                   "BENCH_campaign.json");
}
