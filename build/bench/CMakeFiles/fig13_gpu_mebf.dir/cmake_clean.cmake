file(REMOVE_RECURSE
  "CMakeFiles/fig13_gpu_mebf.dir/fig13_gpu_mebf.cpp.o"
  "CMakeFiles/fig13_gpu_mebf.dir/fig13_gpu_mebf.cpp.o.d"
  "fig13_gpu_mebf"
  "fig13_gpu_mebf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_gpu_mebf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
