// Fixture: violations waived by well-formed suppressions — scanning
// this file alone must exit 0. Exercises both placements: same line
// and alone-on-the-line-above.

#include <cstdlib>

namespace fixture {

inline int
justified()
{
    // mparch-lint: allow(banned-api): fixture demonstrates same-line waiver
    int a = std::rand(); // mparch-lint: allow(banned-api): exercising the same-line form
    // mparch-lint: allow(banned-api): exercising the line-above form
    int b = std::rand();
    return a + b;
}

} // namespace fixture
