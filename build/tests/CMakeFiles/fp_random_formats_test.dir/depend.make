# Empty dependencies file for fp_random_formats_test.
# This may be replaced when dependencies are built.
