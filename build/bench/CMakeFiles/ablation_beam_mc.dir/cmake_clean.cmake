file(REMOVE_RECURSE
  "CMakeFiles/ablation_beam_mc.dir/ablation_beam_mc.cpp.o"
  "CMakeFiles/ablation_beam_mc.dir/ablation_beam_mc.cpp.o.d"
  "ablation_beam_mc"
  "ablation_beam_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_beam_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
