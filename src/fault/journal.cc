#include "fault/journal.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

namespace mparch::fault {

namespace {

constexpr const char *kMagic = "#mparch-journal";

/** Print a double so it round-trips exactly through text. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::optional<OutcomeKind>
parseOutcome(const std::string &text)
{
    for (auto o : {OutcomeKind::Masked, OutcomeKind::Sdc,
                   OutcomeKind::Due, OutcomeKind::Detected}) {
        if (text == outcomeKindName(o))
            return o;
    }
    return std::nullopt;
}

std::optional<FaultModel>
parseFaultModel(const std::string &text)
{
    for (auto m : {FaultModel::SingleBitFlip,
                   FaultModel::DoubleBitFlip, FaultModel::RandomByte,
                   FaultModel::RandomValue, FaultModel::WordBurst}) {
        if (text == faultModelName(m))
            return m;
    }
    return std::nullopt;
}

std::optional<fp::Precision>
parsePrecision(const std::string &text)
{
    for (auto p : {fp::Precision::Half, fp::Precision::Single,
                   fp::Precision::Double, fp::Precision::Bfloat16}) {
        if (text == fp::precisionName(p))
            return p;
    }
    return std::nullopt;
}

/** Split a string on a delimiter (keeps empty fields). */
std::vector<std::string>
split(const std::string &text, char delim)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream is(text);
    while (std::getline(is, field, delim))
        fields.push_back(field);
    return fields;
}

/** Serialise engine allocations: name:kind:units:period:lo:hi;... */
std::string
formatEngines(const std::vector<EngineAllocation> &engines)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < engines.size(); ++i) {
        const auto &alloc = engines[i];
        os << (i ? ";" : "") << alloc.engine.name << ":"
           << static_cast<int>(alloc.engine.kind) << ":"
           << alloc.units << ":" << alloc.engine.period << ":"
           << alloc.engine.lo << ":" << alloc.engine.hi;
    }
    return os.str();
}

std::optional<std::vector<EngineAllocation>>
parseEngines(const std::string &text)
{
    std::vector<EngineAllocation> engines;
    if (text.empty())
        return engines;
    for (const auto &entry : split(text, ';')) {
        const auto fields = split(entry, ':');
        if (fields.size() != 6)
            return std::nullopt;
        EngineAllocation alloc;
        alloc.engine.name = fields[0];
        alloc.engine.kind = static_cast<fp::OpKind>(
            std::atoi(fields[1].c_str()));
        alloc.units = std::strtoull(fields[2].c_str(), nullptr, 10);
        alloc.engine.period =
            std::strtoull(fields[3].c_str(), nullptr, 10);
        alloc.engine.lo = std::strtoull(fields[4].c_str(), nullptr, 10);
        alloc.engine.hi = std::strtoull(fields[5].c_str(), nullptr, 10);
        engines.push_back(alloc);
    }
    return engines;
}

} // namespace

const char *
campaignKindName(CampaignKind kind)
{
    switch (kind) {
      case CampaignKind::Memory:     return "memory";
      case CampaignKind::Datapath:   return "datapath";
      case CampaignKind::Persistent: return "persistent";
    }
    return "?";
}

std::optional<CampaignKind>
parseCampaignKind(const std::string &text)
{
    for (auto k : {CampaignKind::Memory, CampaignKind::Datapath,
                   CampaignKind::Persistent}) {
        if (text == campaignKindName(k))
            return k;
    }
    return std::nullopt;
}

std::uint64_t
goldenFingerprint(const GoldenRun &golden)
{
    // FNV-1a over the output bit patterns and the tick count.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix_word = [&h](std::uint64_t word) {
        for (int i = 0; i < 8; ++i) {
            h ^= (word >> (8 * i)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    for (std::uint64_t bits : golden.outputBits)
        mix_word(bits);
    mix_word(golden.ticks);
    return h;
}

std::string
JournalHeader::mismatch(const JournalHeader &other) const
{
    std::ostringstream os;
    const auto diff = [&os](const char *what, const auto &a,
                            const auto &b) -> bool {
        if (a == b)
            return false;
        os << what << " mismatch (journal: " << a << ", campaign: "
           << b << ")";
        return true;
    };
    if (diff("format version", version, other.version))
        return os.str();
    if (diff("campaign kind", campaignKindName(kind),
             campaignKindName(other.kind)))
        return os.str();
    if (diff("workload", workload, other.workload))
        return os.str();
    if (diff("precision", fp::precisionName(precision),
             fp::precisionName(other.precision)))
        return os.str();
    if (diff("scale", scale, other.scale))
        return os.str();
    if (diff("trials", config.trials, other.config.trials))
        return os.str();
    if (diff("seed", config.seed, other.config.seed))
        return os.str();
    if (diff("input seed", config.inputSeed,
             other.config.inputSeed))
        return os.str();
    if (diff("fault model", faultModelName(config.model),
             faultModelName(other.config.model)))
        return os.str();
    if (diff("timeout factor", config.timeoutFactor,
             other.config.timeoutFactor))
        return os.str();
    if (diff("operand-stages-only", config.operandStagesOnly,
             other.config.operandStagesOnly))
        return os.str();
    if (diff("record-anatomy", config.recordAnatomy,
             other.config.recordAnatomy))
        return os.str();
    if (diff("kind filter", static_cast<int>(kindFilter),
             static_cast<int>(other.kindFilter)))
        return os.str();
    if (diff("engines", formatEngines(engines),
             formatEngines(other.engines)))
        return os.str();
    if (diff("shard count", shardCount, other.shardCount))
        return os.str();
    if (diff("shard index", shardIndex, other.shardIndex))
        return os.str();
    if (goldenFingerprint != other.goldenFingerprint) {
        os << "golden-run fingerprint mismatch (journal: "
           << std::hex << goldenFingerprint << ", campaign: "
           << other.goldenFingerprint
           << "); the workload, its inputs or the FP model changed";
        return os.str();
    }
    return {};
}

std::string
formatJournalHeader(const JournalHeader &header)
{
    std::ostringstream os;
    os << kMagic << " v" << header.version << "\n"
       << "#kind=" << campaignKindName(header.kind) << "\n"
       << "#workload=" << header.workload << "\n"
       << "#precision=" << fp::precisionName(header.precision)
       << "\n"
       << "#scale=" << fmtDouble(header.scale) << "\n"
       << "#trials=" << header.config.trials << "\n"
       << "#seed=" << header.config.seed << "\n"
       << "#input-seed=" << header.config.inputSeed << "\n"
       << "#model=" << faultModelName(header.config.model) << "\n"
       << "#timeout-factor=" << fmtDouble(header.config.timeoutFactor)
       << "\n"
       << "#operand-stages-only="
       << (header.config.operandStagesOnly ? 1 : 0) << "\n"
       << "#record-anatomy=" << (header.config.recordAnatomy ? 1 : 0)
       << "\n"
       << "#kind-filter=" << static_cast<int>(header.kindFilter)
       << "\n"
       << "#engines=" << formatEngines(header.engines) << "\n"
       << "#shard=" << header.shardIndex << "/" << header.shardCount
       << "\n"
       << "#golden=" << std::hex << header.goldenFingerprint
       << std::dec << "\n"
       << "#columns=index,outcome,max_rel,corrupted_fraction,"
          "severity,bit,field,retries\n";
    return os.str();
}

TrialRecord
makeTrialRecord(std::uint64_t index, const TrialOutcome &trial,
                int retries)
{
    TrialRecord rec;
    rec.index = index;
    rec.outcome = trial.outcome;
    rec.retries = retries;
    if (trial.outcome == OutcomeKind::Sdc) {
        rec.maxRel = trial.sdc.maxRel;
        rec.corruptedFraction = trial.sdc.corruptedFraction;
        rec.severity = static_cast<int>(trial.sdc.severity);
    }
    if (trial.hasAnatomy) {
        rec.bit = trial.anatomy.bit;
        rec.field = static_cast<int>(trial.anatomy.field);
    }
    return rec;
}

void
accumulate(CampaignResult &result, const TrialRecord &record)
{
    TrialOutcome trial;
    trial.outcome = record.outcome;
    if (record.outcome == OutcomeKind::Sdc) {
        trial.sdc.maxRel = record.maxRel;
        trial.sdc.corruptedFraction = record.corruptedFraction;
        trial.sdc.severity = static_cast<workloads::SdcSeverity>(
            record.severity < 0 ? 0 : record.severity);
    }
    if (record.bit >= 0) {
        trial.hasAnatomy = true;
        trial.anatomy.bit = record.bit;
        trial.anatomy.field =
            static_cast<FaultAnatomy::Field>(record.field);
        trial.anatomy.outcome = record.outcome;
        trial.anatomy.maxRel = record.maxRel;
    }
    accumulate(result, trial);
}

JournalWriter::JournalWriter(const std::string &path,
                             const JournalHeader &header,
                             std::uint64_t batch, bool truncate)
    : path_(path), batch_(batch ? batch : 1)
{
    out_.open(path, truncate ? std::ios::out | std::ios::trunc
                             : std::ios::out | std::ios::app);
    if (!out_) {
        ok_ = false;
        return;
    }
    if (truncate) {
        out_ << formatJournalHeader(header);
        out_.flush();
        ok_ = static_cast<bool>(out_);
    }
}

JournalWriter::~JournalWriter() { flush(); }

void
JournalWriter::append(const TrialRecord &record)
{
    if (!ok_)
        return;
    out_ << record.index << ','
         << outcomeKindName(record.outcome) << ','
         << fmtDouble(record.maxRel) << ','
         << fmtDouble(record.corruptedFraction) << ','
         << record.severity << ',' << record.bit << ','
         << record.field << ',' << record.retries << '\n';
    if (++pending_ >= batch_)
        flush();
    if (!out_)
        ok_ = false;
}

void
JournalWriter::flush()
{
    if (!ok_)
        return;
    out_.flush();
    pending_ = 0;
    if (!out_)
        ok_ = false;
}

std::optional<Journal>
readJournal(const std::string &path, std::string *error)
{
    const auto fail = [error](const std::string &why) {
        if (error)
            *error = why;
        return std::nullopt;
    };

    std::ifstream in(path);
    if (!in)
        return fail("cannot open '" + path + "'");

    std::string line;
    if (!std::getline(in, line) ||
        line.rfind(kMagic, 0) != 0) {
        return fail("'" + path + "' is not an mparch journal");
    }

    Journal journal;
    journal.validBytes = line.size() + 1;
    {
        // "#mparch-journal v<N>"
        const auto at = line.find(" v");
        journal.header.version =
            at == std::string::npos ? 0
                                    : std::atoi(line.c_str() + at + 2);
        if (journal.header.version != 1)
            return fail("unsupported journal version in '" + path +
                        "'");
    }

    // Header: "#key=value" lines until the columns line.
    std::map<std::string, std::string> kv;
    while (in.peek() == '#' && std::getline(in, line)) {
        journal.validBytes += line.size() + 1;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        kv[line.substr(1, eq - 1)] = line.substr(eq + 1);
    }

    JournalHeader &h = journal.header;
    const auto get = [&kv](const char *key) -> std::string {
        const auto it = kv.find(key);
        return it == kv.end() ? std::string() : it->second;
    };

    const auto kind = parseCampaignKind(get("kind"));
    if (!kind)
        return fail("bad campaign kind in '" + path + "'");
    h.kind = *kind;
    h.workload = get("workload");
    if (h.workload.empty())
        return fail("missing workload name in '" + path + "'");
    const auto precision = parsePrecision(get("precision"));
    if (!precision)
        return fail("bad precision in '" + path + "'");
    h.precision = *precision;
    h.scale = std::atof(get("scale").c_str());
    h.config.trials =
        std::strtoull(get("trials").c_str(), nullptr, 10);
    h.config.seed = std::strtoull(get("seed").c_str(), nullptr, 10);
    h.config.inputSeed =
        std::strtoull(get("input-seed").c_str(), nullptr, 10);
    const auto model = parseFaultModel(get("model"));
    if (!model)
        return fail("bad fault model in '" + path + "'");
    h.config.model = *model;
    h.config.timeoutFactor =
        std::atof(get("timeout-factor").c_str());
    h.config.operandStagesOnly =
        get("operand-stages-only") == "1";
    h.config.recordAnatomy = get("record-anatomy") == "1";
    h.kindFilter =
        static_cast<fp::OpKind>(std::atoi(get("kind-filter").c_str()));
    const auto engines = parseEngines(get("engines"));
    if (!engines)
        return fail("bad engine list in '" + path + "'");
    h.engines = *engines;
    {
        const auto shard = split(get("shard"), '/');
        if (shard.size() != 2)
            return fail("bad shard spec in '" + path + "'");
        h.shardIndex =
            std::strtoull(shard[0].c_str(), nullptr, 10);
        h.shardCount =
            std::strtoull(shard[1].c_str(), nullptr, 10);
        if (h.shardCount == 0 || h.shardIndex >= h.shardCount)
            return fail("bad shard spec in '" + path + "'");
    }
    h.goldenFingerprint =
        std::strtoull(get("golden").c_str(), nullptr, 16);

    // Records. A torn final line (no trailing newline, or fewer than
    // 8 fields) is the batch that was being written when the process
    // died: drop it.
    while (std::getline(in, line)) {
        if (in.eof())
            break;  // no trailing newline: torn write, discard
        if (line.empty()) {
            journal.validBytes += 1;
            continue;
        }
        const auto fields = split(line, ',');
        if (fields.size() != 8)
            break;  // torn write: discard this and everything after
        const auto outcome = parseOutcome(fields[1]);
        if (!outcome)
            break;
        TrialRecord rec;
        rec.index = std::strtoull(fields[0].c_str(), nullptr, 10);
        rec.outcome = *outcome;
        rec.maxRel = std::strtod(fields[2].c_str(), nullptr);
        rec.corruptedFraction =
            std::strtod(fields[3].c_str(), nullptr);
        rec.severity = std::atoi(fields[4].c_str());
        rec.bit = std::atoi(fields[5].c_str());
        rec.field = std::atoi(fields[6].c_str());
        rec.retries = std::atoi(fields[7].c_str());
        journal.records.push_back(rec);
        journal.validBytes += line.size() + 1;
    }
    return journal;
}

} // namespace mparch::fault
