file(REMOVE_RECURSE
  "CMakeFiles/mparch_nn.dir/digits.cc.o"
  "CMakeFiles/mparch_nn.dir/digits.cc.o.d"
  "CMakeFiles/mparch_nn.dir/mnistnet.cc.o"
  "CMakeFiles/mparch_nn.dir/mnistnet.cc.o.d"
  "CMakeFiles/mparch_nn.dir/nn_workloads.cc.o"
  "CMakeFiles/mparch_nn.dir/nn_workloads.cc.o.d"
  "CMakeFiles/mparch_nn.dir/yolite.cc.o"
  "CMakeFiles/mparch_nn.dir/yolite.cc.o.d"
  "libmparch_nn.a"
  "libmparch_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mparch_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
