# Empty dependencies file for vpu_sim_test.
# This may be replaced when dependencies are built.
