file(REMOVE_RECURSE
  "CMakeFiles/fig6_phi_fit.dir/fig6_phi_fit.cpp.o"
  "CMakeFiles/fig6_phi_fit.dir/fig6_phi_fit.cpp.o.d"
  "fig6_phi_fit"
  "fig6_phi_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_phi_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
