/**
 * @file
 * Reproduces Figure 11c: SDC criticality split for the detection CNN
 * — tolerable / detection changed (boxes move, appear or vanish) /
 * classification changed.
 *
 * Shape targets: tolerable errors are the majority everywhere; the
 * critical (classification-change) share is larger for single and
 * half than for double; detection changes depend less on the data
 * type because positions are integer-valued (paper Section 6.3).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 600, 1.0);
    bench::banner("Figure 11c: YOLite SDC criticality split",
                  "tolerable majority; critical share larger for "
                  "single/half than double");

    const auto result =
        bench::study(core::Architecture::Gpu, "yolite", args);
    Table table({"precision", "tolerable", "detection-change",
                 "classification-change"});
    for (const auto &row : result.rows) {
        table.row()
            .cell(std::string(fp::precisionName(row.precision)))
            .cell(row.severity.tolerable, 3)
            .cell(row.severity.detectionChange, 3)
            .cell(row.severity.criticalChange, 3);
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
