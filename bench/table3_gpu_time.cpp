/**
 * @file
 * Reproduces Table 3: execution times on the Volta Titan V.
 *
 * Shape targets: the three microbenchmarks scale with the pure
 * latency ratios 8 : 4 : 3 (paper: 6.00 / 3.02 / 2.23-2.26 s);
 * LavaMD halves at each step (core count, then half2 packing + byte
 * traffic); MxM's gains are muted (bandwidth-bound); YOLO's half
 * build is *slower* than single (layer-wise half<->float conversion).
 */

#include "bench_util.hh"

#include "arch/gpu/gpu.hh"
#include "fault/campaign.hh"

namespace {

using namespace mparch;

double
paperTime(const std::string &w, fp::Precision p)
{
    const int i = p == fp::Precision::Double ? 0
                  : p == fp::Precision::Single ? 1 : 2;
    if (w == "micro-mul") return (double[]){6.001, 3.021, 2.232}[i];
    if (w == "micro-add") return (double[]){5.993, 3.024, 2.255}[i];
    if (w == "micro-fma") return (double[]){5.998, 3.019, 2.260}[i];
    if (w == "lavamd")    return (double[]){1.071, 0.554, 0.291}[i];
    if (w == "mxm")       return (double[]){2.327, 1.909, 1.180}[i];
    return (double[]){0.133, 0.079, 0.283}[i];  // yolov3 / yolite
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 0, 0.3);
    bench::banner(
        "Table 3: Titan V execution time [s] (model vs paper)",
        "micro 2x then 4/3x; LavaMD ~2x each step; MxM muted; "
        "YOLO half slower than single");

    Table table({"benchmark", "precision", "model[s]",
                 "model(norm)", "paper[s]", "paper(norm)"});
    for (const std::string name :
         {"micro-mul", "micro-add", "micro-fma", "lavamd", "mxm",
          "yolite"}) {
        double model_double = 0.0;
        for (auto p : fp::allPrecisions) {
            auto w = nn::makeAnyWorkload(name, p, args.scale);
            const fault::GoldenRun golden(*w, 99);
            const double t = gpu::gpuTimeSeconds(*w, golden);
            if (p == fp::Precision::Double)
                model_double = t;
            table.row()
                .cell(name)
                .cell(std::string(fp::precisionName(p)))
                .cell(t, 9)
                .cell(t / model_double, 3)
                .cell(paperTime(name, p), 3)
                .cell(paperTime(name, p) /
                          paperTime(name, fp::Precision::Double),
                      3);
        }
    }
    table.print(std::cout);

    for (auto p : fp::allPrecisions)
        bench::registerKernelTiming("micro-fma", p, args.scale);
    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
