# Empty dependencies file for fp_arith_test.
# This may be replaced when dependencies are built.
