file(REMOVE_RECURSE
  "libmparch_gpu.a"
)
