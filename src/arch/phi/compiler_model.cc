#include "arch/phi/compiler_model.hh"

#include <algorithm>

#include "arch/phi/params.hh"

namespace mparch::phi {

CompiledKernel
compileKernel(const workloads::KernelDesc &desc, fp::Precision p)
{
    CompiledKernel out;
    out.simdLanes = lanes(p);
    out.pipelineDepth =
        desc.dataDependentBounds ? 1 : pipelineDepth(p);

    int regs = desc.inputStreams * kRegsPerStream;
    if (desc.usesTranscendental)
        regs += kTranscendentalRegs;
    regs += desc.liveValues * out.pipelineDepth;
    out.vectorRegisters = std::min(regs, kVectorRegisters);
    return out;
}

} // namespace mparch::phi
