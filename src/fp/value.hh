/**
 * @file
 * Typed wrappers over the softfloat core.
 *
 * Workloads are templated on Fp<Precision> so the same kernel source
 * runs in double, single, and half — exactly the paper's protocol of
 * keeping the algorithm fixed and changing only the data type. The
 * wrapper stores the canonical bit pattern, so fault injectors can
 * flip bits of live values directly through bits()/setBits().
 */

#ifndef MPARCH_FP_VALUE_HH
#define MPARCH_FP_VALUE_HH

#include <cstdint>
#include <string>

#include "fp/softfloat.hh"

namespace mparch::fp {

/**
 * A floating-point value of a statically known precision.
 *
 * All operators are routed through the instrumented softfloat core,
 * so they honour the FpContext hook installed by the enclosing
 * campaign and update op counters.
 */
template <Precision P>
class Fp
{
  public:
    static constexpr Precision precision = P;

    /** Format descriptor for this precision. */
    static constexpr Format
    format()
    {
        return formatOf(P);
    }

    /** Zero-initialised. */
    constexpr Fp() = default;

    /** Encode a host double (silent RNE conversion). */
    static Fp
    fromDouble(double v)
    {
        return Fp(fpFromDouble(format(), v));
    }

    /** Wrap raw format bits. */
    static constexpr Fp
    fromBits(std::uint64_t bits)
    {
        return Fp(bits & format().valueMask());
    }

    /** Decode to host double (exact for half/single). */
    double toDouble() const { return fpToDouble(format(), bits_); }

    /** Canonical bit pattern. */
    std::uint64_t bits() const { return bits_; }

    /** Overwrite the bit pattern (fault injection entry point). */
    void setBits(std::uint64_t bits)
    {
        bits_ = bits & format().valueMask();
    }

    Fp operator+(Fp o) const
    {
        return Fp(fpAdd(format(), bits_, o.bits_));
    }
    Fp operator-(Fp o) const
    {
        return Fp(fpSub(format(), bits_, o.bits_));
    }
    Fp operator*(Fp o) const
    {
        return Fp(fpMul(format(), bits_, o.bits_));
    }
    Fp operator/(Fp o) const
    {
        return Fp(fpDiv(format(), bits_, o.bits_));
    }
    Fp operator-() const { return Fp(fpNeg(format(), bits_)); }

    Fp &operator+=(Fp o) { return *this = *this + o; }
    Fp &operator-=(Fp o) { return *this = *this - o; }
    Fp &operator*=(Fp o) { return *this = *this * o; }
    Fp &operator/=(Fp o) { return *this = *this / o; }

    bool operator==(Fp o) const
    {
        return fpEqual(format(), bits_, o.bits_);
    }
    bool operator!=(Fp o) const { return !(*this == o); }
    bool operator<(Fp o) const
    {
        return fpLess(format(), bits_, o.bits_);
    }
    bool operator<=(Fp o) const
    {
        return fpLessEqual(format(), bits_, o.bits_);
    }
    bool operator>(Fp o) const { return o < *this; }
    bool operator>=(Fp o) const { return o <= *this; }

    /** True for NaN bit patterns. */
    bool isNaN() const { return fp::isNaN(format(), bits_); }

    /** True for +/- infinity. */
    bool isInf() const { return fp::isInf(format(), bits_); }

  private:
    constexpr explicit Fp(std::uint64_t bits) : bits_(bits) {}

    std::uint64_t bits_ = 0;
};

/** Fused multiply-add in the value's precision. */
template <Precision P>
Fp<P>
fma(Fp<P> a, Fp<P> b, Fp<P> c)
{
    return Fp<P>::fromBits(
        fpFma(Fp<P>::format(), a.bits(), b.bits(), c.bits()));
}

/** Square root in the value's precision. */
template <Precision P>
Fp<P>
sqrt(Fp<P> a)
{
    return Fp<P>::fromBits(fpSqrt(Fp<P>::format(), a.bits()));
}

/** Exponential in the value's precision. */
template <Precision P>
Fp<P>
exp(Fp<P> a)
{
    return Fp<P>::fromBits(fpExp(Fp<P>::format(), a.bits()));
}

/** Absolute value. */
template <Precision P>
Fp<P>
abs(Fp<P> a)
{
    return Fp<P>::fromBits(fpAbs(Fp<P>::format(), a.bits()));
}

using FpHalf = Fp<Precision::Half>;
using FpSingle = Fp<Precision::Single>;
using FpDouble = Fp<Precision::Double>;

/**
 * A dynamically-typed scalar: precision tag plus bit pattern.
 *
 * Used by the SDC corpus and the metrics layer, where values of all
 * three precisions flow through the same analysis code.
 */
struct FpScalar
{
    Precision precision = Precision::Double;
    std::uint64_t bits = 0;

    /** Decode to host double. */
    double
    toDouble() const
    {
        return fpToDouble(formatOf(precision), bits);
    }

    /** Encode a host double at the given precision. */
    static FpScalar
    fromDouble(Precision p, double v)
    {
        return {p, fpFromDouble(formatOf(p), v)};
    }
};

} // namespace mparch::fp

#endif // MPARCH_FP_VALUE_HH
