/**
 * @file
 * Rule registry: the catalogue order here is the documentation order
 * in docs/static-analysis.md — keep them in sync.
 */

#include "analysis/rules.hh"

namespace mparch::analysis {

const std::vector<const Rule *> &
allRules()
{
    static const std::vector<const Rule *> rules = {
        &bannedApiRule(),
        &rngDisciplineRule(),
        &orderedSerializationRule(),
        &hookCoverageRule(),
        &includeHygieneRule(),
        &registryShimRule(),
    };
    return rules;
}

const Rule *
findRule(const std::string &name)
{
    for (const Rule *rule : allRules())
        if (name == rule->name())
            return rule;
    return nullptr;
}

} // namespace mparch::analysis
