# Empty dependencies file for mparch_mitigation.
# This may be replaced when dependencies are built.
