// Fixture: softfloat-style code that rounds and touches datapath
// stages without threading the OpCtx. Lives under a fake src/fp/
// path so the tree-scoped checks apply.

#include "fp/softfloat.hh"

namespace mparch::fp {

std::uint64_t
unhookedRound(Format f, RawFloat raw)
{
    // roundPack without an OpCtx argument: rounding-stage faults
    // would be invisible to injection hooks.
    return roundPack(f, raw);
}

std::uint64_t
unhookedTouch(Format f, std::uint64_t a)
{
    // touch without enterOp or an OpCtx parameter.
    a = detail::touch({}, OpKind::Add, Stage::OperandA, f.totalBits,
                      a);
    return a;
}

} // namespace mparch::fp
