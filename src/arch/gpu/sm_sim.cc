#include "arch/gpu/sm_sim.hh"

#include <vector>

#include "arch/gpu/params.hh"
#include "common/bits.hh"
#include "common/rng.hh"

namespace mparch::gpu {

namespace {

/** Architectural control state widths (bits). */
constexpr unsigned kCounterBits = 32;  // remaining-instruction PC
constexpr unsigned kTimerBits = 8;     // scoreboard countdown
constexpr unsigned kPerWarpBits = kCounterBits + kTimerBits;

/** One scheduled flip of a control-state bit. */
struct ControlFlip
{
    std::uint64_t cycle = ~0ULL;
    int warp = 0;
    /** [0,32): counter bit; [32,40): timer bit; 40: active-mask. */
    unsigned bit = 0;
};

/** Simulation outcome details for the injection campaign. */
struct RunResult
{
    std::uint64_t cycles = 0;
    std::uint64_t issued = 0;
    std::uint64_t issue_busy = 0;
    double inflight_accum = 0.0;
    bool hang = false;
    bool hazard = false;  // scoreboard shortened: stale-read hazard
};

RunResult
run(const SmConfig &config, const WarpProgram &program,
    const ControlFlip *flip, std::uint64_t hard_cap)
{
    const auto latency = static_cast<std::uint64_t>(
        opLatencyCycles(config.precision) *
        packFactor(config.precision));

    struct WarpState
    {
        std::uint64_t remaining = 0;
        std::uint64_t timer = 0;
        std::vector<std::uint64_t> completions;  // independent mode
        bool active = true;
    };
    std::vector<WarpState> warps(
        static_cast<std::size_t>(config.warps));
    for (auto &w : warps)
        w.remaining = program.instructions;

    RunResult result;
    int next_warp = 0;
    std::uint64_t cycle = 0;
    auto all_done = [&warps] {
        for (const auto &w : warps)
            if (w.active)
                return false;
        return true;
    };

    while (!all_done()) {
        if (cycle >= hard_cap) {
            result.hang = true;
            break;
        }
        // Control-fault strike.
        if (flip && cycle == flip->cycle) {
            auto &w = warps[static_cast<std::size_t>(flip->warp)];
            if (flip->bit < kCounterBits) {
                const std::uint64_t before = w.remaining;
                w.remaining = flipBit(
                    w.remaining & maskBits(kCounterBits), flip->bit);
                (void)before;
            } else if (flip->bit < kPerWarpBits) {
                const std::uint64_t before = w.timer;
                w.timer = flipBit(w.timer & maskBits(kTimerBits),
                                  flip->bit - kCounterBits);
                if (w.timer < before)
                    result.hazard = true;
            } else {
                w.active = !w.active;
            }
        }

        // Retire.
        std::uint64_t inflight = 0;
        for (auto &w : warps) {
            if (w.timer > 0) {
                --w.timer;
                ++inflight;
            }
            std::erase_if(w.completions, [cycle](std::uint64_t c) {
                return c <= cycle;
            });
            inflight += w.completions.size();
        }
        result.inflight_accum += static_cast<double>(inflight);

        // Issue: round-robin over ready warps.
        int issued_now = 0;
        for (int probe = 0;
             probe < config.warps && issued_now < config.issueSlots;
             ++probe) {
            const int idx = (next_warp + probe) % config.warps;
            auto &w = warps[static_cast<std::size_t>(idx)];
            if (!w.active || w.remaining == 0)
                continue;
            const bool ready =
                program.dependentChain
                    ? w.timer == 0
                    : w.completions.size() <
                          static_cast<std::size_t>(
                              program.maxInFlight);
            if (!ready)
                continue;
            --w.remaining;
            ++result.issued;
            ++issued_now;
            if (program.dependentChain)
                w.timer = latency;
            else
                w.completions.push_back(cycle + latency);
            next_warp = (idx + 1) % config.warps;
        }
        if (issued_now > 0)
            ++result.issue_busy;

        // Deactivate drained warps.
        for (auto &w : warps) {
            if (w.active && w.remaining == 0 && w.timer == 0 &&
                w.completions.empty()) {
                w.active = false;
            }
        }
        ++cycle;
    }
    result.cycles = cycle;
    return result;
}

} // namespace

SmStats
simulateSm(const SmConfig &config, const WarpProgram &program)
{
    const RunResult r =
        run(config, program, nullptr, ~0ULL >> 1);
    SmStats stats;
    stats.cycles = r.cycles;
    stats.issueUtilization =
        r.cycles ? static_cast<double>(r.issue_busy) /
                       static_cast<double>(r.cycles)
                 : 0.0;
    stats.avgInFlight =
        r.cycles ? r.inflight_accum / static_cast<double>(r.cycles)
                 : 0.0;
    stats.controlBits =
        config.warps * (kPerWarpBits + 1.0);
    return stats;
}

ControlAvf
measureControlAvf(const SmConfig &config, const WarpProgram &program,
                  std::uint64_t trials, std::uint64_t seed,
                  double watchdog_factor)
{
    const RunResult golden =
        run(config, program, nullptr, ~0ULL >> 1);
    const auto hard_cap = static_cast<std::uint64_t>(
        watchdog_factor * static_cast<double>(golden.cycles));

    Rng rng(seed);
    ControlAvf result;
    for (std::uint64_t t = 0; t < trials; ++t) {
        ControlFlip flip;
        flip.cycle = rng.below(golden.cycles);
        flip.warp = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(config.warps)));
        flip.bit =
            static_cast<unsigned>(rng.below(kPerWarpBits + 1));
        const RunResult r = run(config, program, &flip, hard_cap);
        ++result.trials;
        if (r.hang) {
            ++result.due;
        } else if (r.issued != golden.issued || r.hazard) {
            ++result.sdc;
        } else {
            ++result.masked;
        }
    }
    return result;
}

} // namespace mparch::gpu
