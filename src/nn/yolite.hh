/**
 * @file
 * YOLite: a miniature anchor-free object detector.
 *
 * Substitution note (DESIGN.md): the paper runs YOLOv3 on the Caltech
 * pedestrian set; neither fits this environment, so YOLite detects
 * geometric objects (square / plus / diamond) in synthetic 16x16
 * scenes using matched-filter convolutions and a cell grid head. What
 * the paper's Figures 10c/11c need from the detector is exactly what
 * YOLite preserves: a conv-based forward pass in a chosen precision
 * whose outputs are per-cell class scores plus *integer-valued*
 * positions, so that faults can leave detections intact (tolerable),
 * move or drop boxes (detection change), or flip the detected class
 * (classification change).
 */

#ifndef MPARCH_NN_YOLITE_HH
#define MPARCH_NN_YOLITE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "fp/value.hh"

namespace mparch::nn {

/** Scene side length. */
inline constexpr std::size_t kSceneSize = 16;

/** Detector kernel side length. */
inline constexpr std::size_t kShapeSize = 5;

/** Object classes. */
inline constexpr std::size_t kYoliteClasses = 3;

/** Correlation map side (valid convolution). */
inline constexpr std::size_t kMapSize =
    kSceneSize - kShapeSize + 1;  // 12

/** Detection head grid (each cell covers 4x4 map positions). */
inline constexpr std::size_t kGrid = 3;

/** Values per cell in the detector output: 3 scores + position. */
inline constexpr std::size_t kCellValues = kYoliteClasses + 1;

/** Flattened detector output size. */
inline constexpr std::size_t kYoliteOut =
    kGrid * kGrid * kCellValues;  // 36

/** One ground-truth or decoded object. */
struct SceneObject
{
    std::size_t cls = 0;   ///< class index
    std::size_t y = 0;     ///< top-left of the 5x5 patch in the scene
    std::size_t x = 0;
};

/** A generated scene with ground truth. */
struct Scene
{
    std::array<double, kSceneSize * kSceneSize> pixels{};
    std::vector<SceneObject> objects;
};

/** Deterministic scene generator. */
class SceneGenerator
{
  public:
    explicit SceneGenerator(std::uint64_t seed, double noise = 0.08)
        : rng_(seed), noise_(noise)
    {}

    /** Generate the next scene (1..2 non-overlapping objects). */
    Scene next();

    /** The 5x5 ink mask of a class (for tests and filters). */
    static const std::array<const char *, kYoliteClasses> &shapes();

  private:
    Rng rng_;
    double noise_;
};

/** One decoded detection. */
struct Detection
{
    std::size_t cell = 0;  ///< grid cell index
    std::size_t cls = 0;   ///< detected class
    long pos = 0;          ///< best map position (integer-valued)
    double score = 0.0;
};

/**
 * Decode a detector output block (host doubles) into detections.
 *
 * @param out       kYoliteOut values: per cell, class scores then pos.
 * @param threshold Cells whose best score is below this are empty.
 */
std::vector<Detection> decodeDetections(
    const std::array<double, kYoliteOut> &out, double threshold);

/** Matched filter weights (zero-mean, unit-norm), in host double. */
std::vector<double> yoliteFilterBank();

/** Detection threshold matched to the filter bank's self-response. */
double yoliteThreshold();

/**
 * The detector at precision P.
 *
 * Forward pass: for each class, correlate the scene with the class's
 * matched filter (FMA chain); for each grid cell output the max
 * per-class scores over the cell's map positions and the
 * integer-valued position of the cell's best response.
 */
template <fp::Precision P>
class YoliteNet
{
  public:
    using Value = fp::Fp<P>;

    YoliteNet()
    {
        const std::vector<double> bank = yoliteFilterBank();
        filters_.resize(bank.size());
        for (std::size_t i = 0; i < bank.size(); ++i)
            filters_[i] = Value::fromDouble(bank[i]);
    }

    /** Weight buffer (fault-injection target). */
    std::vector<Value> &filters() { return filters_; }

    /**
     * Run detection.
     *
     * @param image kSceneSize^2 pixels at precision P.
     * @param out   kYoliteOut values, laid out per cell.
     */
    void
    detect(const std::vector<Value> &image,
           std::vector<Value> &out) const
    {
        out.assign(kYoliteOut, Value{});
        for (std::size_t cy = 0; cy < kGrid; ++cy) {
            for (std::size_t cx = 0; cx < kGrid; ++cx) {
                const std::size_t cell = cy * kGrid + cx;
                Value best_score{};
                long best_pos = 0;
                bool first = true;
                for (std::size_t cls = 0; cls < kYoliteClasses;
                     ++cls) {
                    Value cls_best{};
                    bool cls_first = true;
                    for (std::size_t my = 0; my < 4; ++my) {
                        for (std::size_t mx = 0; mx < 4; ++mx) {
                            const std::size_t y = 4 * cy + my;
                            const std::size_t x = 4 * cx + mx;
                            const Value s = correlate(image, cls, y, x);
                            if (cls_first || cls_best < s) {
                                cls_best = s;
                                cls_first = false;
                            }
                            if (first || best_score < s) {
                                best_score = s;
                                best_pos = static_cast<long>(
                                    y * kMapSize + x);
                                first = false;
                            }
                        }
                    }
                    out[cell * kCellValues + cls] = cls_best;
                }
                out[cell * kCellValues + kYoliteClasses] =
                    Value::fromDouble(static_cast<double>(best_pos));
            }
        }
    }

  private:
    /** Correlation of filter @p cls with the patch at (y, x). */
    Value
    correlate(const std::vector<Value> &image, std::size_t cls,
              std::size_t y, std::size_t x) const
    {
        Value acc{};
        for (std::size_t ky = 0; ky < kShapeSize; ++ky) {
            for (std::size_t kx = 0; kx < kShapeSize; ++kx) {
                acc = fma(
                    filters_[(cls * kShapeSize + ky) * kShapeSize +
                             kx],
                    image[(y + ky) * kSceneSize + x + kx], acc);
            }
        }
        return acc;
    }

    std::vector<Value> filters_;
};

} // namespace mparch::nn

#endif // MPARCH_NN_YOLITE_HH
