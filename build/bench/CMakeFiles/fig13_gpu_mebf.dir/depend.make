# Empty dependencies file for fig13_gpu_mebf.
# This may be replaced when dependencies are built.
