#include "report/experiments.hh"

#include <cstdio>

#include "common/logging.hh"
#include "nn/nn_workloads.hh"

namespace mparch::report {

std::string
precisionLabel(fp::Precision p)
{
    return std::string(fp::precisionName(p));
}

core::StudyResult
runStudyFor(core::Architecture arch, const std::string &workload,
            const Experiment &experiment, const RunContext &ctx,
            std::vector<fp::Precision> precisions)
{
    core::StudyConfig config;
    config.arch = arch;
    config.workload = workload;
    config.trials = experiment.trialsFor(ctx);
    config.scale = experiment.scaleFor(ctx);
    config.precisions = std::move(precisions);
    config.jobs = ctx.jobs;
    if (ctx.progress) {
        std::fprintf(stderr, "[%s] %s/%s: running campaigns...\n",
                     experiment.id.c_str(),
                     core::architectureName(arch), workload.c_str());
    }
    return core::runStudy(config);
}

fault::SupervisorConfig
reportSupervisor(const RunContext &ctx, double scale)
{
    fault::SupervisorConfig supervisor;
    supervisor.jobs = ctx.jobs;
    supervisor.scale = scale;
    // Registry experiments build every workload through the
    // factories, so the (name, precision, scale, inputSeed) cache
    // key fully identifies them and campaigns can share golden runs.
    supervisor.useGoldenCache = true;
    return supervisor;
}

fault::CampaignResult
runReportCampaign(workloads::Workload &w, fault::CampaignKind kind,
                  const fault::CampaignConfig &config,
                  const RunContext &ctx, double scale,
                  fp::OpKind kind_filter,
                  const std::vector<fault::EngineAllocation> &engines)
{
    const auto supervised = fault::runSupervisedCampaign(
        w, kind, config, reportSupervisor(ctx, scale), kind_filter,
        engines);
    if (!supervised.error.empty())
        fatal("campaign on ", w.name(), " failed: ",
              supervised.error);
    return supervised.result;
}

std::shared_ptr<const fault::GoldenRun>
reportGoldenRun(workloads::Workload &w, double scale,
                std::uint64_t input_seed)
{
    return fault::cachedGoldenRun(w, input_seed, scale);
}

} // namespace mparch::report
