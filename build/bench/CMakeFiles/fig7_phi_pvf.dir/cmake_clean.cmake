file(REMOVE_RECURSE
  "CMakeFiles/fig7_phi_pvf.dir/fig7_phi_pvf.cpp.o"
  "CMakeFiles/fig7_phi_pvf.dir/fig7_phi_pvf.cpp.o.d"
  "fig7_phi_pvf"
  "fig7_phi_pvf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_phi_pvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
