file(REMOVE_RECURSE
  "CMakeFiles/fp_extended_test.dir/fp_extended_test.cc.o"
  "CMakeFiles/fp_extended_test.dir/fp_extended_test.cc.o.d"
  "fp_extended_test"
  "fp_extended_test.pdb"
  "fp_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
