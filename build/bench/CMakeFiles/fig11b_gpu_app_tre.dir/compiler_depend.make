# Empty compiler generated dependencies file for fig11b_gpu_app_tre.
# This may be replaced when dependencies are built.
