# Empty compiler generated dependencies file for mparch_core.
# This may be replaced when dependencies are built.
