/**
 * @file
 * banned-api: nondeterminism sources that must never appear.
 *
 * Every trial in a campaign must be a pure function of (seed, index):
 * that is what makes journal resume byte-identical and --jobs
 * partitioning invariant. std::rand and friends carry hidden global
 * state; std::random_device and wall clocks inject entropy from the
 * environment; getenv makes behaviour depend on the invoking shell.
 * None of these can be caught reliably by tests — a campaign only
 * diverges when the offending path happens to run — so the linter
 * bans them at the source level. getenv is tolerated in CLI trees
 * (examples/, tools/) where flag parsing legitimately reads the
 * environment; everywhere else configuration must arrive as explicit
 * parameters.
 */

#include "analysis/rules.hh"

namespace mparch::analysis {

namespace {

using detail::memberAccess;
using detail::stdQualified;

struct BannedName
{
    const char *name;
    const char *why;
    const char *hint;
    bool callOnly;     ///< only flag when followed by `(`
    bool envFamily;    ///< exempt in CLI trees (examples/, tools/)
};

const BannedName kBanned[] = {
    {"rand", "std::rand draws from hidden global state",
     "draw from an explicitly seeded mparch::Rng instead", true,
     false},
    {"srand", "std::srand mutates hidden global RNG state",
     "seed an mparch::Rng at the call site instead", true, false},
    {"rand_r", "rand_r is a weak, platform-dependent generator",
     "draw from an explicitly seeded mparch::Rng instead", true,
     false},
    {"random_device",
     "std::random_device injects environment entropy — trials must "
     "be a pure function of (seed, index)",
     "derive streams with trialRng(seed, index) from common/rng.hh",
     false, false},
    {"time", "wall-clock time makes results run-dependent",
     "use std::chrono::steady_clock for durations; never fold time "
     "into seeds or trial logic", true, false},
    {"clock", "processor time is load-dependent",
     "use std::chrono::steady_clock for durations", true, false},
    {"gettimeofday", "wall-clock time makes results run-dependent",
     "use std::chrono::steady_clock for durations", true, false},
    {"clock_gettime", "wall-clock time makes results run-dependent",
     "use std::chrono::steady_clock for durations", true, false},
    {"localtime", "calendar time depends on the run environment",
     "timestamps belong in post-processing, not in trial paths",
     true, false},
    {"gmtime", "calendar time depends on the run environment",
     "timestamps belong in post-processing, not in trial paths",
     true, false},
    {"ctime", "calendar time depends on the run environment",
     "timestamps belong in post-processing, not in trial paths",
     true, false},
    {"mktime", "calendar time depends on the run environment",
     "timestamps belong in post-processing, not in trial paths",
     true, false},
    {"system_clock",
     "std::chrono::system_clock is wall-clock time",
     "use std::chrono::steady_clock for durations", false, false},
    {"high_resolution_clock",
     "high_resolution_clock may alias the wall clock",
     "use std::chrono::steady_clock for durations", false, false},
    {"getenv",
     "environment reads make library behaviour depend on the "
     "invoking shell",
     "read the environment only while parsing CLI flags "
     "(examples/, tools/); pass configuration explicitly elsewhere",
     true, true},
    {"secure_getenv",
     "environment reads make library behaviour depend on the "
     "invoking shell",
     "read the environment only while parsing CLI flags "
     "(examples/, tools/); pass configuration explicitly elsewhere",
     true, true},
    {"setenv", "mutating the environment hides configuration state",
     "pass configuration explicitly", true, true},
    {"putenv", "mutating the environment hides configuration state",
     "pass configuration explicitly", true, true},
};

/** For call-only names, accept `name(` in plain, `std::`- or
 *  `::`-qualified spelling; reject member accesses `x.name(`. */
bool
matchesCall(const std::vector<Token> &code, std::size_t i)
{
    if (i + 1 >= code.size() || !code[i + 1].isPunct("("))
        return false;
    if (memberAccess(code, i))
        return false;
    return true;
}

/**
 * `time(...)` and `clock(...)` are common member names, so the bare
 * spelling is only flagged with an unambiguous C-library argument
 * shape: time(nullptr) / time(NULL) / time(0) / clock().
 */
bool
unambiguousTimeCall(const std::vector<Token> &code, std::size_t i)
{
    if (stdQualified(code, i))
        return true;
    if (i + 2 >= code.size())
        return false;
    const Token &arg = code[i + 2];
    if (code[i].text == "clock")
        return arg.isPunct(")");
    return (arg.isIdent("nullptr") || arg.isIdent("NULL") ||
            arg.is(TokKind::Number, "0")) &&
           i + 3 < code.size() && code[i + 3].isPunct(")");
}

class BannedApiRule final : public Rule
{
  public:
    const char *name() const override { return "banned-api"; }

    const char *
    summary() const override
    {
        return "no hidden-state RNGs, wall clocks, or environment "
               "reads outside CLI parsing";
    }

    void
    check(const SourceFile &file, std::vector<Finding> &out) const
        override
    {
        const bool cliTree =
            file.pathHas("examples") || file.pathHas("tools");
        const auto &code = file.code;
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (code[i].kind != TokKind::Identifier)
                continue;
            for (const BannedName &b : kBanned) {
                if (code[i].text != b.name)
                    continue;
                if (b.envFamily && cliTree)
                    continue;
                if (b.callOnly && !matchesCall(code, i))
                    continue;
                if ((code[i].text == "time" ||
                     code[i].text == "clock") &&
                    !unambiguousTimeCall(code, i))
                    continue;
                Finding f;
                f.rule = name();
                f.path = file.path;
                f.line = code[i].line;
                f.col = code[i].col;
                f.message = std::string(b.name) + ": " + b.why;
                f.hint = b.hint;
                out.push_back(std::move(f));
                break;
            }
        }
    }
};

} // namespace

const Rule &
bannedApiRule()
{
    static const BannedApiRule rule;
    return rule;
}

} // namespace mparch::analysis
