# Empty compiler generated dependencies file for fig11c_gpu_yolo_crit.
# This may be replaced when dependencies are built.
