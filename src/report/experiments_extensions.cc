/**
 * @file
 * Registry entries for the beyond-the-paper extensions: new formats
 * (bfloat16, tensor-core mixed), mitigation cost/benefit, bit-field
 * anatomy, deviation densities and an out-of-sample prediction.
 */

#include <cmath>

#include "common/histogram.hh"
#include "fault/campaign.hh"
#include "mitigation/abft.hh"
#include "mitigation/replicated.hh"
#include "report/experiments.hh"
#include "workloads/workload.hh"

namespace mparch::report {

namespace {

using fp::Precision;

/** remaining[] entry of a study row at a TRE threshold. */
double
remainAt(const core::PrecisionResult &row, double threshold)
{
    for (std::size_t i = 0; i < row.tre.thresholds.size(); ++i)
        if (row.tre.thresholds[i] == threshold)
            return row.tre.remaining[i];
    return 0.0;
}

Experiment
extBfloat16()
{
    Experiment e;
    e.id = "ext_bfloat16";
    e.paperRef = "-";
    e.kind = ExperimentKind::Extension;
    e.title = "Extension: bfloat16 reliability projection (GPU)";
    e.shapeTarget = "exposure like half, criticality worse than "
                    "half, single-like range";
    e.defaultTrials = 400;
    e.defaultScale = 0.2;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const std::vector<Precision> precisions = {
            Precision::Double, Precision::Single, Precision::Half,
            Precision::Bfloat16};
        for (const std::string name : {"mxm", "mnist"}) {
            const auto result =
                runStudyFor(core::Architecture::Gpu, name, self,
                            ctx, precisions);
            auto &table = doc.addTable(
                name, {"precision", "fit-sdc(a.u.)", "mebf(a.u.)",
                       "avf-dp", "remain@0.1%", "remain@1%",
                       "critical-frac"});
            for (const auto &row : result.rows) {
                table.row()
                    .cell(precisionLabel(row.precision))
                    .cell({row.fitSdc, 0})
                    .cell({row.mebf, 4})
                    .cell({row.avfDatapath, 3})
                    .cell({remainAt(row, 1e-3), 3})
                    .cell({remainAt(row, 1e-2), 3})
                    .cell({row.severity.criticalChange +
                               row.severity.detectionChange,
                           3});
            }
        }
        doc.notes.push_back(
            "Note: the micro op chains are near-stationary in "
            "bfloat16 (a 2^-10 increment is below its ulp), so "
            "this extension reports the realistic kernels only.");
        return doc;
    };
    e.checks = {
        exceeds("exposure-below-half",
                "bfloat16's MxM FIT lands below half's (same "
                "storage, smaller multiplier)",
                sel("fit-sdc(a.u.)", {{"precision", "half"}},
                    "mxm"),
                sel("fit-sdc(a.u.)", {{"precision", "bfloat16"}},
                    "mxm")),
        exceeds("mebf-best-of-all",
                "bfloat16's MEBF is the best of all formats on "
                "MxM",
                sel("mebf(a.u.)", {{"precision", "bfloat16"}},
                    "mxm"),
                sel("mebf(a.u.)", {{"precision", "half"}}, "mxm")),
        allAbove("worst-criticality",
                 "bfloat16 has the worst criticality profile of "
                 "any format (~100% of MxM SDC FIT remains at 0.1% "
                 "TRE)",
                 sel("remain@0.1%", {{"precision", "bfloat16"}},
                     "mxm"),
                 0.95),
        exceeds("cnn-exponent-range-helps",
                "on the CNN bfloat16's single-like exponent range "
                "keeps its critical share below binary16's",
                sel("critical-frac", {{"precision", "half"}},
                    "mnist"),
                sel("critical-frac", {{"precision", "bfloat16"}},
                    "mnist")),
    };
    return e;
}

Experiment
extMitigation()
{
    Experiment e;
    e.id = "ext_mitigation";
    e.paperRef = "-";
    e.kind = ExperimentKind::Extension;
    e.title = "Extension: mitigation vs precision (GEMM, CAROL-FI "
              "memory campaign)";
    e.shapeTarget = "TMR kills SDCs at 3x cost; DWC converts them "
                    "to detections at 2x; ABFT corrects at ~1.3x "
                    "but its tolerance loosens at low precision";
    e.defaultTrials = 300;
    e.defaultScale = 0.15;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"precision", "variant", "ops-overhead",
                     "avf-sdc", "avf-critical(>1%)",
                     "avf-detected"});
        for (auto p : fp::allPrecisions) {
            // Unprotected baseline op count for the overhead
            // column.
            auto plain = workloads::makeWorkload("mxm", p, scale);
            const double base_ops = static_cast<double>(
                reportGoldenRun(*plain, scale)->ops.totalOps());

            struct Variant
            {
                std::string label;
                workloads::WorkloadPtr w;
            };
            std::vector<Variant> variants;
            variants.push_back(
                {"plain", workloads::makeWorkload("mxm", p, scale)});
            variants.push_back(
                {"dwc",
                 mitigation::makeReplicated(
                     mitigation::Redundancy::Dwc, "mxm", p, scale)});
            variants.push_back(
                {"tmr",
                 mitigation::makeReplicated(
                     mitigation::Redundancy::Tmr, "mxm", p, scale)});
            variants.push_back(
                {"abft", mitigation::makeAbftMxM(p, scale)});

            for (auto &variant : variants) {
                const double ops = static_cast<double>(
                    fault::GoldenRun(*variant.w, 99)
                        .ops.totalOps());
                fault::CampaignConfig config;
                config.trials = self.trialsFor(ctx);
                const auto r = runReportCampaign(
                    *variant.w, fault::CampaignKind::Memory,
                    config, ctx, scale);
                const double critical =
                    r.avfSdc() * r.survivingFraction(0.01);
                table.row()
                    .cell(precisionLabel(p))
                    .cell(variant.label)
                    .cell({ops / base_ops, 2})
                    .cell({r.avfSdc(), 3})
                    .cell({critical, 3})
                    .cell({r.avfDetected(), 3});
            }
        }
        doc.notes.push_back(
            "(avf-critical: probability a fault silently perturbs "
            "the output by more than 1%)");
        return doc;
    };
    e.checks = {
        increasesAlong("unprotected-critical-grows",
                       "the unprotected critical-SDC AVF grows "
                       "from double to half (the criticality "
                       "claim, quantified)",
                       sel("avf-critical(>1%)",
                           {{"variant", "plain"}})),
        allBelow("tmr-kills-sdcs",
                 "TMR removes SDCs outright at every precision",
                 sel("avf-sdc", {{"variant", "tmr"}}), 0.01),
        allBelow("dwc-converts-sdcs",
                 "DWC leaves almost no silent corruptions",
                 sel("avf-sdc", {{"variant", "dwc"}}), 0.05),
        allAbove("dwc-detects",
                 "DWC converts faults into detections instead",
                 sel("avf-detected", {{"variant", "dwc"}}), 0.05),
        allAbove("tmr-costs-3x",
                 "TMR costs ~3x the arithmetic",
                 sel("ops-overhead", {{"variant", "tmr"}}), 2.80),
        allBelow("abft-is-cheap",
                 "ABFT's checksummed GEMM costs far less than "
                 "replication",
                 sel("ops-overhead", {{"variant", "abft"}}), 1.60),
        ratioWithin("abft-cuts-double",
                    "ABFT substantially cuts double's critical AVF "
                    "(its checksum tolerance is tight at double)",
                    sel("avf-critical(>1%)",
                        {{"precision", "double"},
                         {"variant", "abft"}}),
                    sel("avf-critical(>1%)",
                        {{"precision", "double"},
                         {"variant", "plain"}}),
                    0.0, 0.70),
        ratioWithin("abft-barely-dents-half",
                    "ABFT barely dents half's critical AVF (its "
                    "rounding tolerance loosens with precision)",
                    sel("avf-critical(>1%)",
                        {{"precision", "half"},
                         {"variant", "abft"}}),
                    sel("avf-critical(>1%)",
                        {{"precision", "half"},
                         {"variant", "plain"}}),
                    0.60, 1.10),
    };
    return e;
}

Experiment
extBitAnatomy()
{
    Experiment e;
    e.id = "ext_bit_anatomy";
    e.paperRef = "-";
    e.kind = ExperimentKind::Extension;
    e.title = "Extension: vulnerability by IEEE754 bit field";
    e.shapeTarget = "exponent flips always critical; low-mantissa "
                    "flips harmless in double, consequential in "
                    "half";
    e.defaultTrials = 1500;
    e.defaultScale = 0.15;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        using fault::FaultAnatomy;
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"precision", "field", "flips", "avf-sdc",
                     "critical(>1%) share of SDCs"});
        const auto fieldName = [](FaultAnatomy::Field f) {
            switch (f) {
              case FaultAnatomy::Field::Sign:     return "sign";
              case FaultAnatomy::Field::Exponent: return "exponent";
              case FaultAnatomy::Field::MantissaHigh:
                return "mantissa-high";
              case FaultAnatomy::Field::MantissaLow:
                return "mantissa-low";
            }
            return "?";
        };
        for (auto p : fp::allPrecisions) {
            auto w = workloads::makeWorkload("mxm", p, scale);
            fault::CampaignConfig config;
            config.trials = self.trialsFor(ctx);
            config.recordAnatomy = true;
            const auto r = runReportCampaign(
                *w, fault::CampaignKind::Memory, config, ctx,
                scale);
            for (auto field : {FaultAnatomy::Field::Sign,
                               FaultAnatomy::Field::Exponent,
                               FaultAnatomy::Field::MantissaHigh,
                               FaultAnatomy::Field::MantissaLow}) {
                std::uint64_t flips = 0, sdc = 0, critical = 0;
                for (const auto &a : r.anatomy) {
                    if (a.field != field)
                        continue;
                    ++flips;
                    if (a.outcome == fault::OutcomeKind::Sdc) {
                        ++sdc;
                        critical += a.maxRel > 0.01;
                    }
                }
                table.row()
                    .cell(precisionLabel(p))
                    .cell(fieldName(field))
                    .cell(static_cast<std::int64_t>(flips))
                    .cell({flips ? static_cast<double>(sdc) / flips
                                 : 0.0,
                           3})
                    .cell({sdc ? static_cast<double>(critical) / sdc
                               : 0.0,
                           3});
            }
        }
        return doc;
    };
    e.checks = {
        allAbove("exponent-always-critical",
                 "exponent flips produce overwhelmingly critical "
                 "SDCs at every precision",
                 sel("critical(>1%) share of SDCs",
                     {{"field", "exponent"}}),
                 0.90),
        allBelow("double-low-mantissa-harmless",
                 "low-mantissa SDCs never exceed 1% deviation in "
                 "double",
                 sel("critical(>1%) share of SDCs",
                     {{"precision", "double"},
                      {"field", "mantissa-low"}}),
                 0.01),
        allBelow("single-low-mantissa-mostly-harmless",
                 "low-mantissa SDCs exceed 1% deviation rarely in "
                 "single",
                 sel("critical(>1%) share of SDCs",
                     {{"precision", "single"},
                      {"field", "mantissa-low"}}),
                 0.10),
        allAbove("half-low-mantissa-bites",
                 "in half even the low mantissa is consequential "
                 "(all 5 of its bits matter)",
                 sel("critical(>1%) share of SDCs",
                     {{"precision", "half"},
                      {"field", "mantissa-low"}}),
                 0.15),
    };
    return e;
}

Experiment
extHotspotPrediction()
{
    Experiment e;
    e.id = "ext_hotspot_prediction";
    e.paperRef = "-";
    e.kind = ExperimentKind::Extension;
    e.title = "Extension: Hotspot trend prediction";
    e.shapeTarget = "the ADD-dominated stencil's trend is elevated "
                    "like Micro-ADD's (single above double), the "
                    "inverse of LavaMD's MUL-like decay";
    e.defaultTrials = 300;
    e.defaultScale = 0.25;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        struct Trend
        {
            double s = 0.0, h = 0.0;
        };
        const auto trendOf = [&](const std::string &name) {
            const auto result = runStudyFor(
                core::Architecture::Gpu, name, self, ctx);
            Trend t;
            const double base =
                result.find(Precision::Double)->fitSdc;
            t.s = result.find(Precision::Single)->fitSdc / base;
            t.h = result.find(Precision::Half)->fitSdc / base;
            return t;
        };
        const auto distance = [](const Trend &a, const Trend &b) {
            return std::abs(a.s - b.s) + std::abs(a.h - b.h);
        };

        const Trend add = trendOf("micro-add");
        const Trend mul = trendOf("micro-mul");
        const Trend hotspot = trendOf("hotspot");
        const Trend lavamd = trendOf("lavamd");

        auto &table = doc.addTable(
            "main", {"code", "single/double", "half/double",
                     "closer-to"});
        const auto emit = [&](const char *name, const Trend &t,
                              bool classify) {
            const char *closer =
                !classify ? "-"
                : distance(t, add) < distance(t, mul)
                    ? "micro-add"
                    : "micro-mul";
            table.row()
                .cell(name)
                .cell({t.s, 2})
                .cell({t.h, 2})
                .cell(closer);
        };
        emit("micro-add", add, false);
        emit("micro-mul", mul, false);
        emit("hotspot", hotspot, true);
        emit("lavamd", lavamd, true);
        doc.notes.push_back(
            "(closer-to: nearest micro trend by L1 distance over "
            "the two ratios; the strict classification is "
            "seed-sensitive because micro-add's own elevation "
            "varies, so the checks test the robust inversion "
            "instead)");
        return doc;
    };
    e.checks = {
        allAbove("hotspot-single-elevated",
                 "Hotspot's single FIT sits above double's — the "
                 "Micro-ADD-like inversion the paper's "
                 "mix-determines-trend logic predicts out of "
                 "sample (LavaMD's MUL-like mix decays instead)",
                 sel("single/double", {{"code", "hotspot"}}), 1.0),
        custom("lavamd-tracks-mul",
               "LavaMD's precision trend classifies as Micro-MUL's "
               "(the paper's in-sample anchor)",
               [](const ResultDoc &doc) {
                   CheckOutcome out;
                   const auto *table = doc.table("main");
                   std::string lavamd;
                   for (std::size_t r = 0; r < table->rowCount();
                        ++r) {
                       if (table->at(r, "code")->formatted() ==
                           "lavamd")
                           lavamd =
                               table->at(r, "closer-to")->formatted();
                   }
                   out.pass = lavamd == "micro-mul";
                   out.observed = "lavamd tracks " + lavamd;
                   return out;
               }),
        exceeds("hotspot-inverts-lavamd",
                "Hotspot's single/double FIT ratio sits above "
                "LavaMD's (ADD-dominated vs MUL-dominated)",
                sel("single/double", {{"code", "hotspot"}}),
                sel("single/double", {{"code", "lavamd"}}),
                1.10),
    };
    return e;
}

Experiment
extTensorcore()
{
    Experiment e;
    e.id = "ext_tensorcore";
    e.paperRef = "-";
    e.kind = ExperimentKind::Extension;
    e.title = "Extension: tensor-core mixed-precision GEMM";
    e.shapeTarget = "mixed (half-in, single-accumulate) "
                    "criticality falls between pure half and pure "
                    "single";
    e.defaultTrials = 500;
    e.defaultScale = 0.15;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        struct Variant
        {
            const char *label;
            workloads::WorkloadPtr w;
        };
        std::vector<Variant> variants;
        variants.push_back(
            {"half", workloads::makeWorkload(
                         "mxm", Precision::Half, scale)});
        variants.push_back(
            {"mixed(h->s)",
             workloads::makeWorkload("mxm-mixed",
                                     Precision::Single, scale)});
        variants.push_back(
            {"single", workloads::makeWorkload(
                           "mxm", Precision::Single, scale)});

        auto &table = doc.addTable(
            "main", {"variant", "storage-bits", "avf-sdc",
                     "remain@0.1%", "remain@1%"});
        for (auto &variant : variants) {
            variant.w->reset(1);
            std::uint64_t bits = 0;
            for (const auto &view : variant.w->buffers())
                bits += view.bits();
            fault::CampaignConfig config;
            config.trials = self.trialsFor(ctx);
            const auto r = runReportCampaign(
                *variant.w, fault::CampaignKind::Memory, config,
                ctx, scale);
            table.row()
                .cell(variant.label)
                .cell(static_cast<std::int64_t>(bits))
                .cell({r.avfSdc(), 3})
                .cell({r.survivingFraction(1e-3), 3})
                .cell({r.survivingFraction(1e-2), 3});
        }
        return doc;
    };
    e.checks = {
        exceeds("mixed-below-half",
                "the mixed contract's criticality tail falls below "
                "pure half's",
                sel("remain@0.1%", {{"variant", "half"}}),
                sel("remain@0.1%", {{"variant", "mixed(h->s)"}}),
                1.05),
        exceeds("mixed-above-single",
                "but stays above pure single's (storage faults "
                "still strike half-precision data)",
                sel("remain@0.1%", {{"variant", "mixed(h->s)"}}),
                sel("remain@0.1%", {{"variant", "single"}}),
                1.05),
        ratioWithin("mixed-storage-two-thirds",
                    "the mixed variant needs ~2/3 of single's "
                    "storage",
                    sel("storage-bits",
                        {{"variant", "mixed(h->s)"}}),
                    sel("storage-bits", {{"variant", "single"}}),
                    0.55, 0.80),
    };
    return e;
}

Experiment
extDeviationHistogram()
{
    Experiment e;
    e.id = "ext_deviation_histogram";
    e.paperRef = "-";
    e.kind = ExperimentKind::Extension;
    e.title = "Extension: SDC deviation histograms (GEMM, "
              "functional-unit faults)";
    e.shapeTarget = "double's mass in the small-deviation decades, "
                    "half's in 1e-2..1e0; exponent spikes "
                    "everywhere";
    e.defaultTrials = 800;
    e.defaultScale = 0.15;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"precision", "sdcs", "share<1e-6",
                     "share>=1e-2", "share-catastrophic"});
        for (auto p : fp::allPrecisions) {
            auto w = workloads::makeWorkload("mxm", p, scale);
            fault::CampaignConfig config;
            config.trials = self.trialsFor(ctx);
            const auto r = runReportCampaign(
                *w, fault::CampaignKind::Datapath, config, ctx,
                scale);

            LogHistogram histogram(-10, 13);  // 1e-10 .. 1e3
            std::uint64_t tiny = 0, large = 0, catastrophic = 0;
            for (const auto &rec : r.corpus) {
                histogram.add(rec.maxRel);
                if (!std::isfinite(rec.maxRel) ||
                    rec.maxRel >= 1e2)
                    ++catastrophic;
                if (rec.maxRel < 1e-6)
                    ++tiny;
                if (rec.maxRel >= 1e-2)
                    ++large;
            }
            const double n =
                std::max<double>(1.0, r.corpus.size());
            table.row()
                .cell(precisionLabel(p))
                .cell(static_cast<std::int64_t>(r.corpus.size()))
                .cell({tiny / n, 3})
                .cell({large / n, 3})
                .cell({catastrophic / n, 3});
            doc.notes.push_back(
                "--- " + precisionLabel(p) + " (" +
                std::to_string(r.sdc) + " SDCs / " +
                std::to_string(r.trials) + " trials) ---\n" +
                histogram.render());
        }
        return doc;
    };
    e.checks = {
        allAbove("double-mass-tiny",
                 "the majority of double's SDC mass lies below "
                 "1e-6 relative deviation (mantissa-tail flips)",
                 sel("share<1e-6", {{"precision", "double"}}),
                 0.50),
        allAbove("half-mass-large",
                 "the majority of half's SDC mass lies at or above "
                 "1e-2 (few mantissa bits to hide in)",
                 sel("share>=1e-2", {{"precision", "half"}}),
                 0.50),
        exceeds("half-far-coarser-than-double",
                "half's large-deviation share dwarfs double's",
                sel("share>=1e-2", {{"precision", "half"}}),
                sel("share>=1e-2", {{"precision", "double"}}),
                2.0),
        allAbove("catastrophic-spike-everywhere",
                 "every precision keeps a catastrophic/non-finite "
                 "spike from exponent strikes",
                 sel("share-catastrophic"), 0.01),
    };
    return e;
}

} // namespace

void
addExtensionExperiments(std::vector<Experiment> &out)
{
    out.push_back(extBfloat16());
    out.push_back(extMitigation());
    out.push_back(extBitAnatomy());
    out.push_back(extHotspotPrediction());
    out.push_back(extTensorcore());
    out.push_back(extDeviationHistogram());
}

} // namespace mparch::report
