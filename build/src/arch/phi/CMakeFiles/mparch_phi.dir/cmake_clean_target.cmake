file(REMOVE_RECURSE
  "libmparch_phi.a"
)
