file(REMOVE_RECURSE
  "CMakeFiles/protected_gemm.dir/protected_gemm.cpp.o"
  "CMakeFiles/protected_gemm.dir/protected_gemm.cpp.o.d"
  "protected_gemm"
  "protected_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protected_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
