/**
 * @file
 * Internal glue for the experiment definition files.
 *
 * Each experiments_*.cc file contributes one block of registry
 * entries; this header declares the add* hooks registry.cc calls
 * plus the small shared helpers (study/campaign execution honouring
 * the RunContext) that keep the definitions declarative.
 */

#ifndef MPARCH_REPORT_EXPERIMENTS_HH
#define MPARCH_REPORT_EXPERIMENTS_HH

#include "core/study.hh"
#include "fault/campaign.hh"
#include "fault/supervisor.hh"
#include "report/registry.hh"

namespace mparch::report {

void addFpgaExperiments(std::vector<Experiment> &out);
void addPhiExperiments(std::vector<Experiment> &out);
void addGpuExperiments(std::vector<Experiment> &out);
void addAblationExperiments(std::vector<Experiment> &out);
void addExtensionExperiments(std::vector<Experiment> &out);
void addEngineExperiments(std::vector<Experiment> &out);

/** std::string form of a precision name (cell convenience). */
std::string precisionLabel(fp::Precision p);

/**
 * Run a full reliability study for one experiment, with the
 * context's trials/scale/jobs applied and progress on stderr.
 */
core::StudyResult
runStudyFor(core::Architecture arch, const std::string &workload,
            const Experiment &experiment, const RunContext &ctx,
            std::vector<fp::Precision> precisions = {});

/** Supervisor knobs for a direct (non-study) campaign: parallel
 *  trial execution plus the process-wide golden-run cache. */
fault::SupervisorConfig reportSupervisor(const RunContext &ctx,
                                         double scale);

/**
 * Run one campaign with the context's worker threads and the
 * golden-run cache — the registry-path replacement for the plain
 * runMemoryCampaign / runDatapathCampaign / runPersistentCampaign
 * calls the old bench mains made (which were always serial).
 */
fault::CampaignResult
runReportCampaign(workloads::Workload &w, fault::CampaignKind kind,
                  const fault::CampaignConfig &config,
                  const RunContext &ctx, double scale,
                  fp::OpKind kind_filter = fp::OpKind::NumKinds,
                  const std::vector<fault::EngineAllocation> &engines =
                      {});

/** Golden run shared through the process-wide cache. */
std::shared_ptr<const fault::GoldenRun>
reportGoldenRun(workloads::Workload &w, double scale,
                std::uint64_t input_seed = 99);

} // namespace mparch::report

#endif // MPARCH_REPORT_EXPERIMENTS_HH
