#include "common/histogram.hh"

#include <algorithm>
#include <sstream>

namespace mparch {

std::string
LogHistogram::render(int width) const
{
    std::uint64_t peak = std::max(underflow(), overflow());
    for (int i = 0; i < bucketCount(); ++i)
        peak = std::max(peak, bucket(i));
    if (peak == 0)
        return "(empty)\n";

    std::ostringstream os;
    auto line = [&](const std::string &label, std::uint64_t count) {
        if (count == 0)
            return;
        const int bar = static_cast<int>(
            static_cast<double>(count) * width /
            static_cast<double>(peak));
        os << label;
        for (std::size_t pad = label.size(); pad < 14; ++pad)
            os << ' ';
        os << std::string(static_cast<std::size_t>(std::max(bar, 1)),
                          '#')
           << ' ' << count << '\n';
    };
    line("<", underflow());
    for (int i = 0; i < bucketCount(); ++i)
        line(bucketLabel(i), bucket(i));
    line(">=", overflow());
    return os.str();
}

} // namespace mparch
