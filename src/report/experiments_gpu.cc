/**
 * @file
 * Registry entries for the paper's Volta section (Section 6):
 * Table 3 and Figures 10-13 on the Titan V.
 */

#include "arch/gpu/gpu.hh"
#include "arch/gpu/regfile.hh"
#include "nn/nn_workloads.hh"
#include "report/experiments.hh"

namespace mparch::report {

namespace {

using fp::Precision;

Experiment
table3GpuTime()
{
    Experiment e;
    e.id = "table3_gpu_time";
    e.paperRef = "Table 3";
    e.kind = ExperimentKind::PaperTable;
    e.title = "Table 3: Titan V execution time [s] (model vs paper)";
    e.shapeTarget = "micro 2x then 4/3x; LavaMD ~2x each step; MxM "
                    "muted; YOLO half slower than single";
    e.defaultTrials = 0;
    e.defaultScale = 0.3;
    e.quick = true;
    e.paper = {{"micro-mul/double/time", 6.001},
               {"micro-mul/single/time", 3.021},
               {"micro-mul/half/time", 2.232},
               {"micro-add/double/time", 5.993},
               {"micro-add/single/time", 3.024},
               {"micro-add/half/time", 2.255},
               {"micro-fma/double/time", 5.998},
               {"micro-fma/single/time", 3.019},
               {"micro-fma/half/time", 2.260},
               {"lavamd/double/time", 1.071},
               {"lavamd/single/time", 0.554},
               {"lavamd/half/time", 0.291},
               {"mxm/double/time", 2.327},
               {"mxm/single/time", 1.909},
               {"mxm/half/time", 1.180},
               {"yolite/double/time", 0.133},
               {"yolite/single/time", 0.079},
               {"yolite/half/time", 0.283}};
    e.timings = {{"micro-fma",
                  {Precision::Double, Precision::Single,
                   Precision::Half}}};
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const double scale = self.scaleFor(ctx);
        auto &table = doc.addTable(
            "main", {"benchmark", "precision", "model[s]",
                     "model(norm)", "paper[s]", "paper(norm)"});
        for (const std::string name :
             {"micro-mul", "micro-add", "micro-fma", "lavamd",
              "mxm", "yolite"}) {
            double model_double = 0.0;
            const double paper_double =
                self.paperValue(name + "/double/time");
            for (auto p : fp::allPrecisions) {
                auto w = nn::makeAnyWorkload(name, p, scale);
                const auto golden = reportGoldenRun(*w, scale);
                const double t = gpu::gpuTimeSeconds(*w, *golden);
                if (p == Precision::Double)
                    model_double = t;
                const double paper_t = self.paperValue(
                    name + "/" + precisionLabel(p) + "/time");
                table.row()
                    .cell(name)
                    .cell(precisionLabel(p))
                    .cell({t, 9})
                    .cell({t / model_double, 3})
                    .cell({paper_t, 3})
                    .cell({paper_t / paper_double, 3});
            }
        }
        return doc;
    };
    e.checks = {
        ratioWithin("micro-single-halves",
                    "Micro-MUL's single build takes half of "
                    "double's time (4- vs 8-cycle latency)",
                    sel("model[s]", {{"benchmark", "micro-mul"},
                                     {"precision", "single"}}),
                    sel("model[s]", {{"benchmark", "micro-mul"},
                                     {"precision", "double"}}),
                    0.45, 0.55),
        ratioWithin("micro-half-three-eighths",
                    "Micro-MUL's half build takes 3/8 of double's "
                    "time (3- vs 8-cycle latency)",
                    sel("model[s]", {{"benchmark", "micro-mul"},
                                     {"precision", "half"}}),
                    sel("model[s]", {{"benchmark", "micro-mul"},
                                     {"precision", "double"}}),
                    0.34, 0.41),
        decreasesAlong("lavamd-halves-each-step",
                       "LavaMD's time falls at every precision step "
                       "(core count, then half2 packing)",
                       sel("model[s]", {{"benchmark", "lavamd"}})),
        ratioWithin("mxm-muted-gain",
                    "MxM's single gain is muted (bandwidth-bound; "
                    "paper ratio 0.820)",
                    sel("model[s]", {{"benchmark", "mxm"},
                                     {"precision", "single"}}),
                    sel("model[s]", {{"benchmark", "mxm"},
                                     {"precision", "double"}}),
                    0.70, 0.92),
        exceeds("yolo-half-slower",
                "the CNN's half build is slower than its single "
                "build (layer-wise half<->float conversion)",
                sel("model[s]", {{"benchmark", "yolite"},
                                 {"precision", "half"}}),
                sel("model[s]", {{"benchmark", "yolite"},
                                 {"precision", "single"}})),
    };
    return e;
}

Experiment
fig10aGpuMicroFit()
{
    Experiment e;
    e.id = "fig10a_gpu_micro_fit";
    e.paperRef = "Figure 10a";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 10a: Volta micro FIT (a.u.)";
    e.shapeTarget = "MUL: D>S>H; ADD: S~H>D; FMA: D~S>H; "
                    "FMA>MUL>ADD";
    e.defaultTrials = 400;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main", {"micro", "precision", "fit-sdc(a.u.)",
                     "fit-due(a.u.)", "sdc norm-to-double"});
        for (const std::string name :
             {"micro-mul", "micro-add", "micro-fma"}) {
            const auto result = runStudyFor(
                core::Architecture::Gpu, name, self, ctx);
            const double base =
                result.find(Precision::Double)->fitSdc;
            for (const auto &row : result.rows) {
                table.row()
                    .cell(name)
                    .cell(precisionLabel(row.precision))
                    .cell({row.fitSdc, 0})
                    .cell({row.fitDue, 0})
                    .cell({row.fitSdc / base, 2});
            }
        }
        return doc;
    };
    e.checks = {
        decreasesAlong("mul-orders-d-s-h",
                       "Micro-MUL's SDC FIT orders double > single "
                       "> half (wider multiplier state dominates)",
                       sel("fit-sdc(a.u.)",
                           {{"micro", "micro-mul"}})),
        exceeds("add-single-above-double",
                "Micro-ADD's single SDC FIT exceeds double's (more "
                "active FP32 cores dominate the thinner adder)",
                sel("fit-sdc(a.u.)", {{"micro", "micro-add"},
                                      {"precision", "single"}}),
                sel("fit-sdc(a.u.)", {{"micro", "micro-add"},
                                      {"precision", "double"}}),
                1.05),
        exceeds("add-half-above-double",
                "Micro-ADD's half SDC FIT exceeds double's",
                sel("fit-sdc(a.u.)", {{"micro", "micro-add"},
                                      {"precision", "half"}}),
                sel("fit-sdc(a.u.)", {{"micro", "micro-add"},
                                      {"precision", "double"}})),
        exceeds("fma-half-lowest",
                "Micro-FMA's half SDC FIT is clearly the lowest",
                sel("fit-sdc(a.u.)", {{"micro", "micro-fma"},
                                      {"precision", "double"}}),
                sel("fit-sdc(a.u.)", {{"micro", "micro-fma"},
                                      {"precision", "half"}}),
                1.10),
        exceeds("fma-above-mul",
                "at fixed precision FMA's FIT exceeds MUL's "
                "(double)",
                sel("fit-sdc(a.u.)", {{"micro", "micro-fma"},
                                      {"precision", "double"}}),
                sel("fit-sdc(a.u.)", {{"micro", "micro-mul"},
                                      {"precision", "double"}})),
        exceeds("mul-above-add",
                "at fixed precision MUL's FIT exceeds ADD's "
                "(double)",
                sel("fit-sdc(a.u.)", {{"micro", "micro-mul"},
                                      {"precision", "double"}}),
                sel("fit-sdc(a.u.)", {{"micro", "micro-add"},
                                      {"precision", "double"}})),
        flatWithin("micro-due-flat",
                   "micro DUE FIT is roughly flat across ops and "
                   "precisions",
                   sel("fit-due(a.u.)"), 2.0),
    };
    return e;
}

Experiment
fig10bGpuAppFit()
{
    Experiment e;
    e.id = "fig10b_gpu_app_fit";
    e.paperRef = "Figure 10b";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 10b: Volta LavaMD and MxM FIT (a.u.)";
    e.shapeTarget = "MxM >> LavaMD; LavaMD tracks MUL, MxM tracks "
                    "FMA; app DUE ~10x micro DUE";
    e.defaultTrials = 300;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main", {"benchmark", "precision", "fit-sdc(a.u.)",
                     "fit-due(a.u.)", "sdc norm-to-double"});
        double lavamd_d = 0.0, mxm_d = 0.0;
        for (const std::string name : {"lavamd", "mxm"}) {
            const auto result = runStudyFor(
                core::Architecture::Gpu, name, self, ctx);
            const double base =
                result.find(Precision::Double)->fitSdc;
            (name == "lavamd" ? lavamd_d : mxm_d) = base;
            for (const auto &row : result.rows) {
                table.row()
                    .cell(name)
                    .cell(precisionLabel(row.precision))
                    .cell({row.fitSdc, 0})
                    .cell({row.fitDue, 0})
                    .cell({row.fitSdc / base, 2});
            }
        }
        char note[96];
        std::snprintf(note, sizeof(note),
                      "MxM / LavaMD SDC FIT ratio (double): %.2f",
                      mxm_d / lavamd_d);
        doc.notes.push_back(note);
        return doc;
    };
    e.checks = {
        exceeds("mxm-far-above-lavamd",
                "MxM's SDC FIT sits far above LavaMD's at double "
                "(memory-bound cache exposure)",
                sel("fit-sdc(a.u.)", {{"benchmark", "mxm"},
                                      {"precision", "double"}}),
                sel("fit-sdc(a.u.)", {{"benchmark", "lavamd"},
                                      {"precision", "double"}}),
                1.50),
        decreasesAlong("lavamd-tracks-mul",
                       "LavaMD's precision trend falls like "
                       "Micro-MUL's (MUL-dominated mix)",
                       sel("fit-sdc(a.u.)",
                           {{"benchmark", "lavamd"}})),
        allAbove("app-due-high",
                 "app DUE FIT is roughly an order of magnitude "
                 "above the micro kernels' (~500-700)",
                 sel("fit-due(a.u.)"), 2000.0),
    };
    return e;
}

Experiment
fig10cGpuYoloFit()
{
    Experiment e;
    e.id = "fig10c_gpu_yolo_fit";
    e.paperRef = "Figure 10c";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 10c: Volta YOLite (YOLOv3 stand-in) FIT";
    e.shapeTarget = "DUE high (CNN) and worst for double; paper's "
                    "half-lowest SDC is a documented deviation";
    e.defaultTrials = 400;
    e.defaultScale = 1.0;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const auto result = runStudyFor(core::Architecture::Gpu,
                                        "yolite", self, ctx);
        auto &table = doc.addTable(
            "main", {"precision", "fit-sdc(a.u.)", "fit-due(a.u.)",
                     "due/sdc"});
        for (const auto &row : result.rows) {
            table.row()
                .cell(precisionLabel(row.precision))
                .cell({row.fitSdc, 0})
                .cell({row.fitDue, 0})
                .cell({row.fitDue / row.fitSdc, 2});
        }
        doc.notes.push_back(
            "Known deviation (EXPERIMENTS.md): the paper measures "
            "half's SDC FIT clearly lowest; in our scaled-down "
            "detector half's per-fault visibility outweighs its "
            "resource reduction, so its SDC FIT lands highest. The "
            "deviation shrinks as --scale grows the network.");
        return doc;
    };
    e.checks = {
        allAbove("due-on-par-with-sdc",
                 "the detection CNN's DUE FIT is on par with or "
                 "above its SDC FIT at every precision (CNNs are "
                 "crash-heavy; arithmetic kernels sit far lower)",
                 sel("due/sdc"), 0.70),
        exceeds("due-double-worst",
                "DUE FIT grows with the precision's occupancy "
                "(double worst)",
                sel("fit-due(a.u.)", {{"precision", "double"}}),
                sel("fit-due(a.u.)", {{"precision", "half"}}),
                1.05),
    };
    return e;
}

/** Shared body for the fig11a/fig11b TRE experiments. */
ResultDoc
runGpuTre(const Experiment &self, const RunContext &ctx,
          const std::vector<std::string> &names,
          const char *series_column)
{
    ResultDoc doc;
    auto &summary = doc.addTable(
        "remaining-at-tre",
        {series_column, "precision", "remain@0.1%"});
    for (const auto &name : names) {
        const auto result =
            runStudyFor(core::Architecture::Gpu, name, self, ctx);
        const auto *d = result.find(Precision::Double);
        const auto *s = result.find(Precision::Single);
        const auto *h = result.find(Precision::Half);
        auto &curve = doc.addTable(
            name + " (fraction of FIT remaining)",
            {"tre", "double", "single", "half"});
        for (std::size_t i = 0; i < d->tre.thresholds.size(); ++i) {
            curve.row()
                .cell({d->tre.thresholds[i], 4})
                .cell({d->tre.remaining[i], 3})
                .cell({s->tre.remaining[i], 3})
                .cell({h->tre.remaining[i], 3});
        }
        for (const auto *row : {d, s, h}) {
            summary.row()
                .cell(name)
                .cell(precisionLabel(row->precision))
                .cell({row->tre.remaining[2], 3});
        }
    }
    return doc;
}

Experiment
fig11aGpuMicroTre()
{
    Experiment e;
    e.id = "fig11a_gpu_micro_tre";
    e.paperRef = "Figure 11a";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 11a: Volta micro FIT reduction vs TRE";
    e.shapeTarget = "double reduces most (<50% left at 0.1% TRE); "
                    "half nearly irreducible for every micro-op";
    e.defaultTrials = 500;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        return runGpuTre(self, ctx,
                         {"micro-mul", "micro-add", "micro-fma"},
                         "micro");
    };
    e.checks = {
        increasesAlong("mul-remaining-orders",
                       "Micro-MUL's remaining FIT at 0.1% TRE "
                       "orders double < single < half",
                       sel("remain@0.1%", {{"micro", "micro-mul"}},
                           "remaining-at-tre")),
        allBelow("double-reduces-most",
                 "every micro-op's double build sheds most of its "
                 "FIT by 0.1% TRE (under 50% remains)",
                 sel("remain@0.1%", {{"precision", "double"}},
                     "remaining-at-tre"),
                 0.50),
        allAbove("half-nearly-irreducible",
                 "at half no micro-op's FIT is meaningfully "
                 "reducible (>85% remains at 0.1% TRE for "
                 "MUL/ADD/FMA alike — aligned-significand flips "
                 "are kept or discarded whole)",
                 sel("remain@0.1%", {{"precision", "half"}},
                     "remaining-at-tre"),
                 0.85),
        allAbove("mul-half-nearly-flat",
                 "Micro-MUL's half curve stays high (~93% left at "
                 "0.1% TRE)",
                 sel("remain@0.1%", {{"micro", "micro-mul"},
                                     {"precision", "half"}},
                     "remaining-at-tre"),
                 0.80),
    };
    return e;
}

Experiment
fig11bGpuAppTre()
{
    Experiment e;
    e.id = "fig11b_gpu_app_tre";
    e.paperRef = "Figure 11b";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 11b: Volta LavaMD/MxM FIT reduction vs TRE";
    e.shapeTarget = "remaining fraction: half > single > double";
    e.defaultTrials = 500;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        return runGpuTre(self, ctx, {"lavamd", "mxm"}, "benchmark");
    };
    e.checks = {
        increasesAlong("lavamd-half-most-critical",
                       "LavaMD's remaining FIT at 0.1% TRE orders "
                       "double < single < half",
                       sel("remain@0.1%", {{"benchmark", "lavamd"}},
                           "remaining-at-tre")),
        increasesAlong("mxm-half-most-critical",
                       "MxM's remaining FIT at 0.1% TRE orders "
                       "double < single < half",
                       sel("remain@0.1%", {{"benchmark", "mxm"}},
                           "remaining-at-tre")),
    };
    return e;
}

Experiment
fig11cGpuYoloCrit()
{
    Experiment e;
    e.id = "fig11c_gpu_yolo_crit";
    e.paperRef = "Figure 11c";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 11c: YOLite SDC criticality split";
    e.shapeTarget = "tolerable majority at double, shrinking with "
                    "precision; critical share larger for "
                    "single/half than double";
    e.defaultTrials = 600;
    e.defaultScale = 1.0;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const auto result = runStudyFor(core::Architecture::Gpu,
                                        "yolite", self, ctx);
        auto &table = doc.addTable(
            "main", {"precision", "tolerable", "detection-change",
                     "classification-change"});
        for (const auto &row : result.rows) {
            table.row()
                .cell(precisionLabel(row.precision))
                .cell({row.severity.tolerable, 3})
                .cell({row.severity.detectionChange, 3})
                .cell({row.severity.criticalChange, 3});
        }
        return doc;
    };
    e.checks = {
        allAbove("tolerable-majority-at-double",
                 "tolerable errors are the clear majority at "
                 "double (~77%); the share shrinks as precision "
                 "drops",
                 sel("tolerable", {{"precision", "double"}}), 0.50),
        decreasesAlong("tolerable-shrinks",
                       "the tolerable share shrinks monotonically "
                       "from double to half",
                       sel("tolerable"), 0.02),
        exceeds("critical-grows-single",
                "the classification-change share is larger for "
                "single than double",
                sel("classification-change",
                    {{"precision", "single"}}),
                sel("classification-change",
                    {{"precision", "double"}})),
        exceeds("critical-grows-half",
                "the classification-change share is larger for "
                "half than double",
                sel("classification-change",
                    {{"precision", "half"}}),
                sel("classification-change",
                    {{"precision", "double"}})),
    };
    return e;
}

Experiment
fig12GpuAvf()
{
    Experiment e;
    e.id = "fig12_gpu_avf";
    e.paperRef = "Figure 12";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 12: Volta micro AVF (register injection)";
    e.shapeTarget = "AVF(double) ~ 2x AVF(single); single ~ half";
    e.defaultTrials = 4000;
    e.defaultScale = 1.0;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        const auto trials = self.trialsFor(ctx);
        auto &table = doc.addTable(
            "main", {"micro", "precision", "avf", "ci95-lo",
                     "ci95-hi", "norm-to-single"});
        for (auto op :
             {workloads::MicroOp::Mul, workloads::MicroOp::Add,
              workloads::MicroOp::Fma}) {
            const double single_avf =
                gpu::measureRegFileAvf(op, Precision::Single,
                                       trials, 5)
                    .avfSdc();
            for (auto p : fp::allPrecisions) {
                const auto r =
                    gpu::measureRegFileAvf(op, p, trials, 5);
                const auto ci = r.avf95();
                table.row()
                    .cell(std::string("micro-") +
                          workloads::microOpName(op))
                    .cell(precisionLabel(p))
                    .cell({r.avfSdc(), 3})
                    .cell({ci.lo, 3})
                    .cell({ci.hi, 3})
                    .cell({r.avfSdc() / single_avf, 2});
            }
        }
        return doc;
    };
    for (const char *op : {"micro-mul", "micro-add", "micro-fma"}) {
        e.checks.push_back(ratioWithin(
            std::string(op) + "-double-twice-single",
            std::string("AVF(double) is about twice AVF(single) "
                        "for ") +
                op + " (a double occupies two 32-bit registers)",
            sel("avf", {{"micro", op}, {"precision", "double"}}),
            sel("avf", {{"micro", op}, {"precision", "single"}}),
            1.70, 2.60));
        e.checks.push_back(ratioWithin(
            std::string(op) + "-single-matches-half",
            std::string("AVF(single) ~ AVF(half) for ") + op +
                " (half2 packs two live halves per register)",
            sel("avf", {{"micro", op}, {"precision", "single"}}),
            sel("avf", {{"micro", op}, {"precision", "half"}}),
            0.85, 1.40));
    }
    return e;
}

Experiment
fig13GpuMebf()
{
    Experiment e;
    e.id = "fig13_gpu_mebf";
    e.paperRef = "Figure 13";
    e.kind = ExperimentKind::PaperFigure;
    e.title = "Figure 13: Volta MEBF (a.u.)";
    e.shapeTarget = "MEBF rises with reduced precision; apps gain "
                    "more than micro kernels";
    e.defaultTrials = 300;
    e.defaultScale = 0.3;
    e.run = [](const Experiment &self, const RunContext &ctx) {
        ResultDoc doc;
        auto &table = doc.addTable(
            "main", {"benchmark", "precision", "mebf(a.u.)",
                     "norm-to-double"});
        for (const std::string name :
             {"micro-mul", "micro-add", "micro-fma", "lavamd",
              "mxm", "yolite"}) {
            // The detector ignores --scale shrinkage: its deviation
            // analysis (EXPERIMENTS.md) is pinned at scale 1.
            RunContext local = ctx;
            if (name == "yolite")
                local.scale = 1.0;
            const auto result = runStudyFor(
                core::Architecture::Gpu, name, self, local);
            const double base =
                result.find(Precision::Double)->mebf;
            for (const auto &row : result.rows) {
                table.row()
                    .cell(name)
                    .cell(precisionLabel(row.precision))
                    .cell({row.mebf, 4})
                    .cell({row.mebf / base, 2});
            }
        }
        doc.notes.push_back(
            "Known deviation (EXPERIMENTS.md): YOLite's half row "
            "inherits the Figure 10c deviation plus the genuine "
            "half slowdown, so it drops where the paper's falls "
            "less.");
        return doc;
    };
    for (const char *name :
         {"micro-mul", "micro-add", "micro-fma", "lavamd", "mxm"}) {
        e.checks.push_back(increasesAlong(
            std::string(name) + "-mebf-rises",
            std::string("MEBF grows monotonically with reduced "
                        "precision for ") +
                name,
            sel("mebf(a.u.)", {{"benchmark", name}})));
    }
    e.checks.push_back(exceeds(
        "apps-gain-more",
        "LavaMD's half MEBF gain far exceeds the micro kernels' "
        "(paper: ~9.8x vs 2.5-3.5x over double)",
        sel("norm-to-double", {{"benchmark", "lavamd"},
                               {"precision", "half"}}),
        sel("norm-to-double", {{"benchmark", "micro-mul"},
                               {"precision", "half"}}),
        1.50));
    return e;
}

} // namespace

void
addGpuExperiments(std::vector<Experiment> &out)
{
    out.push_back(table3GpuTime());
    out.push_back(fig10aGpuMicroFit());
    out.push_back(fig10bGpuAppFit());
    out.push_back(fig10cGpuYoloFit());
    out.push_back(fig11aGpuMicroTre());
    out.push_back(fig11bGpuAppTre());
    out.push_back(fig11cGpuYoloCrit());
    out.push_back(fig12GpuAvf());
    out.push_back(fig13GpuMebf());
}

} // namespace mparch::report
