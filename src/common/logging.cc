#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace mparch {

namespace {

/** Human-readable prefix for each severity. */
const char *
levelPrefix(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
logMessage(LogLevel level, const std::string &msg)
{
    std::fprintf(stderr, "[mparch:%s] %s\n", levelPrefix(level),
                 msg.c_str());
    std::fflush(stderr);
}

void
logAndDie(LogLevel level, const std::string &msg)
{
    logMessage(level, msg);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace mparch
