/**
 * @file
 * Extended softfloat tests: directed rounding modes (validated
 * against the host FPU via <cfenv>), integer conversions, exhaustive
 * binary16 sweeps, and format-generic property tests that also cover
 * the beyond-the-paper formats (bfloat16, TF32).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cfenv>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/rng.hh"
#include "fp/softfloat.hh"
#include "fp/value.hh"
#include "fault/campaign.hh"
#include "workloads/workload.hh"

namespace mparch::fp {
namespace {

std::uint64_t
d2u(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

double
u2d(std::uint64_t u)
{
    return std::bit_cast<double>(u);
}

/** Random finite/special pattern (duplicated from fp_arith_test). */
std::uint64_t
randomBits(Rng &rng, Format f)
{
    const int kind = static_cast<int>(rng.below(10));
    switch (kind) {
      case 0: return zero(f, rng.chance(0.5));
      case 1: return infinity(f, rng.chance(0.5));
      case 2: return quietNaN(f);
      case 3:
        return packFields(f, rng.chance(0.5), 0,
                          rng.below(f.manMask()) + 1);
      case 4:
        return packFields(f, rng.chance(0.5),
                          f.maxBiasedExp() - 1 -
                              static_cast<int>(rng.below(3)),
                          rng.below(f.manMask() + 1));
      default:
        return packFields(
            f, rng.chance(0.5),
            1 + static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(f.maxBiasedExp() - 1))),
            rng.below(f.manMask() + 1));
    }
}

// ---------------------------------------------------------------
// Directed rounding vs the host FPU
// ---------------------------------------------------------------

struct HostRoundGuard
{
    explicit HostRoundGuard(int mode) { std::fesetround(mode); }
    ~HostRoundGuard() { std::fesetround(FE_TONEAREST); }
};

class RoundingModes
    : public ::testing::TestWithParam<std::pair<Rounding, int>>
{};

TEST_P(RoundingModes, DoubleAddMulDivMatchHostFpu)
{
    const auto [soft_mode, host_mode] = GetParam();
    FpContext ctx;
    ctx.rounding = soft_mode;
    FpEnvGuard guard(ctx);
    HostRoundGuard host(host_mode);

    Rng rng(21);
    for (int i = 0; i < 40000; ++i) {
        const std::uint64_t a = randomBits(rng, kDouble);
        const std::uint64_t b = randomBits(rng, kDouble);
        const volatile double da = u2d(a);
        const volatile double db = u2d(b);
        const std::uint64_t add_want = d2u(da + db);
        const std::uint64_t mul_want = d2u(da * db);
        const std::uint64_t div_want = d2u(da / db);
        const std::uint64_t add_got = fpAdd(kDouble, a, b);
        const std::uint64_t mul_got = fpMul(kDouble, a, b);
        const std::uint64_t div_got = fpDiv(kDouble, a, b);
        if (!(isNaN(kDouble, add_want) && isNaN(kDouble, add_got))) {
            EXPECT_EQ(add_want, add_got) << "add " << a << " " << b;
        }
        if (!(isNaN(kDouble, mul_want) && isNaN(kDouble, mul_got))) {
            EXPECT_EQ(mul_want, mul_got) << "mul " << a << " " << b;
        }
        if (!(isNaN(kDouble, div_want) && isNaN(kDouble, div_got))) {
            EXPECT_EQ(div_want, div_got) << "div " << a << " " << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RoundingModes,
    ::testing::Values(
        std::pair{Rounding::NearestEven, FE_TONEAREST},
        std::pair{Rounding::TowardZero, FE_TOWARDZERO},
        std::pair{Rounding::Upward, FE_UPWARD},
        std::pair{Rounding::Downward, FE_DOWNWARD}),
    [](const auto &info) {
        return std::string(roundingName(info.param.first) ==
                                   std::string("nearest-even")
                               ? "nearest_even"
                           : roundingName(info.param.first) ==
                                   std::string("toward-zero")
                               ? "toward_zero"
                           : roundingName(info.param.first) ==
                                   std::string("upward")
                               ? "upward"
                               : "downward");
    });

TEST(RoundingModesEdge, OverflowSaturationPerMode)
{
    const std::uint64_t big = maxFinite(kDouble, false);
    auto with_mode = [&](Rounding mode, bool negate) {
        FpContext ctx;
        ctx.rounding = mode;
        FpEnvGuard guard(ctx);
        const std::uint64_t a = negate ? fpNeg(kDouble, big) : big;
        return fpAdd(kDouble, a, a);
    };
    EXPECT_EQ(with_mode(Rounding::NearestEven, false),
              infinity(kDouble, false));
    EXPECT_EQ(with_mode(Rounding::TowardZero, false),
              maxFinite(kDouble, false));
    EXPECT_EQ(with_mode(Rounding::Upward, false),
              infinity(kDouble, false));
    EXPECT_EQ(with_mode(Rounding::Upward, true),
              maxFinite(kDouble, true));
    EXPECT_EQ(with_mode(Rounding::Downward, false),
              maxFinite(kDouble, false));
    EXPECT_EQ(with_mode(Rounding::Downward, true),
              infinity(kDouble, true));
}

TEST(RoundingModesEdge, ExactCancellationSign)
{
    FpContext ctx;
    ctx.rounding = Rounding::Downward;
    FpEnvGuard guard(ctx);
    const std::uint64_t x = fpFromDouble(kDouble, 1.5);
    const std::uint64_t r = fpSub(kDouble, x, x);
    EXPECT_EQ(r, zero(kDouble, true));  // x - x = -0 toward-negative
    ctx.rounding = Rounding::NearestEven;
    EXPECT_EQ(fpSub(kDouble, x, x), zero(kDouble, false));
}

// ---------------------------------------------------------------
// Integer conversions
// ---------------------------------------------------------------

TEST(IntConvert, FromIntMatchesHostCast)
{
    Rng rng(31);
    for (int i = 0; i < 100000; ++i) {
        std::int64_t v = static_cast<std::int64_t>(rng.next());
        // Mix in small values where exactness matters.
        if (rng.chance(0.5))
            v = rng.between(-5000, 5000);
        EXPECT_EQ(d2u(static_cast<double>(v)),
                  fpFromInt(kDouble, v))
            << v;
        EXPECT_EQ(std::bit_cast<std::uint32_t>(
                      static_cast<float>(v)),
                  fpFromInt(kSingle, v))
            << v;
    }
    EXPECT_EQ(fpFromInt(kDouble, 0), zero(kDouble, false));
    EXPECT_EQ(fpFromInt(kDouble,
                        std::numeric_limits<std::int64_t>::min()),
              d2u(-9.223372036854775808e18));
}

TEST(IntConvert, ToIntRoundsNearestEven)
{
    EXPECT_EQ(fpToInt(kDouble, d2u(2.5)), 2);   // tie to even
    EXPECT_EQ(fpToInt(kDouble, d2u(3.5)), 4);
    EXPECT_EQ(fpToInt(kDouble, d2u(-2.5)), -2);
    EXPECT_EQ(fpToInt(kDouble, d2u(2.4999)), 2);
    EXPECT_EQ(fpToInt(kDouble, d2u(2.5001)), 3);
    EXPECT_EQ(fpToInt(kDouble, d2u(0.0)), 0);
    EXPECT_EQ(fpToInt(kDouble, quietNaN(kDouble)), 0);
    EXPECT_EQ(fpToInt(kDouble, infinity(kDouble, false)),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(fpToInt(kDouble, infinity(kDouble, true)),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(fpToInt(kDouble, d2u(1e300)),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(fpToInt(kHalf, fpFromDouble(kHalf, 1024.0)), 1024);
}

TEST(IntConvert, RoundTripExactForRepresentable)
{
    Rng rng(33);
    for (int i = 0; i < 50000; ++i) {
        const std::int64_t v = rng.between(-(1 << 24), 1 << 24);
        EXPECT_EQ(fpToInt(kDouble, fpFromInt(kDouble, v)), v);
        if (std::abs(v) <= 2048) {
            EXPECT_EQ(fpToInt(kHalf, fpFromInt(kHalf, v)), v);
        }
    }
}

// ---------------------------------------------------------------
// Format-generic properties (covers bfloat16 and TF32 too)
// ---------------------------------------------------------------

class FormatProperties : public ::testing::TestWithParam<Format>
{};

TEST_P(FormatProperties, AdditionIsCommutative)
{
    const Format f = GetParam();
    Rng rng(41);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = randomBits(rng, f);
        const std::uint64_t b = randomBits(rng, f);
        EXPECT_EQ(fpAdd(f, a, b), fpAdd(f, b, a));
        EXPECT_EQ(fpMul(f, a, b), fpMul(f, b, a));
    }
}

TEST_P(FormatProperties, IdentityElements)
{
    const Format f = GetParam();
    Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = randomBits(rng, f);
        if (isNaN(f, a))
            continue;
        // a * 1 == a, a + 0 == a (except -0 + +0).
        EXPECT_EQ(fpMul(f, a, one(f)), a);
        if (!isZero(f, a)) {
            EXPECT_EQ(fpAdd(f, a, zero(f, false)), a);
        }
        // a / 1 == a.
        EXPECT_EQ(fpDiv(f, a, one(f)), a);
        // a - a == +0 for finite a.
        if (isFinite(f, a)) {
            EXPECT_EQ(fpSub(f, a, a), zero(f, false));
        }
    }
}

TEST_P(FormatProperties, SignSymmetry)
{
    const Format f = GetParam();
    Rng rng(43);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = randomBits(rng, f);
        const std::uint64_t b = randomBits(rng, f);
        if (isNaN(f, a) || isNaN(f, b))
            continue;
        // (-a) * b == -(a * b)
        const std::uint64_t lhs = fpMul(f, fpNeg(f, a), b);
        const std::uint64_t rhs = fpNeg(f, fpMul(f, a, b));
        if (!(isNaN(f, lhs) && isNaN(f, rhs))) {
            EXPECT_EQ(lhs, rhs);
        }
    }
}

TEST_P(FormatProperties, FmaDegeneratesToMulAndAdd)
{
    const Format f = GetParam();
    Rng rng(44);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = randomBits(rng, f);
        const std::uint64_t b = randomBits(rng, f);
        // fma(a, b, 0) == a*b whenever a*b isn't an exact -0 case.
        const std::uint64_t via_fma =
            fpFma(f, a, b, zero(f, false));
        const std::uint64_t via_mul = fpMul(f, a, b);
        if (isNaN(f, via_fma) && isNaN(f, via_mul))
            continue;
        if (isZero(f, via_mul))
            continue;  // signed-zero sum rules differ legitimately
        EXPECT_EQ(via_fma, via_mul);
        // fma(a, 1, c) == a + c.
        const std::uint64_t c = randomBits(rng, f);
        const std::uint64_t fma1 = fpFma(f, a, one(f), c);
        const std::uint64_t add1 = fpAdd(f, a, c);
        if (!(isNaN(f, fma1) && isNaN(f, add1))) {
            EXPECT_EQ(fma1, add1);
        }
    }
}

TEST_P(FormatProperties, MonotoneAdditionOnPositives)
{
    const Format f = GetParam();
    Rng rng(45);
    for (int i = 0; i < 20000; ++i) {
        std::uint64_t a = randomBits(rng, f) & (f.valueMask() >> 1);
        std::uint64_t b = randomBits(rng, f) & (f.valueMask() >> 1);
        std::uint64_t c = randomBits(rng, f) & (f.valueMask() >> 1);
        if (isNaN(f, a) || isNaN(f, b) || isNaN(f, c))
            continue;
        if (!fpLessEqual(f, a, b))
            std::swap(a, b);
        // a <= b  =>  a + c <= b + c  (positives, any rounding once
        // fixed to RNE).
        EXPECT_TRUE(fpLessEqual(f, fpAdd(f, a, c), fpAdd(f, b, c)));
    }
}

TEST_P(FormatProperties, SqrtInverseOfSquareWithinUlp)
{
    const Format f = GetParam();
    Rng rng(46);
    for (int i = 0; i < 10000; ++i) {
        // Positive normal, kept small enough that a^2 stays finite.
        const std::uint64_t a = packFields(
            f, false,
            f.bias() / 2 +
                static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(f.bias()))),
            rng.below(f.manMask() + 1));
        const std::uint64_t sq = fpMul(f, a, a);
        if (isInf(f, sq) || isZero(f, sq))
            continue;
        const std::uint64_t back = fpSqrt(f, sq);
        // sqrt(a^2) within 1 ulp of a.
        const std::int64_t delta =
            static_cast<std::int64_t>(back) -
            static_cast<std::int64_t>(a);
        EXPECT_LE(std::abs(delta), 1)
            << "a=" << a << " sq=" << sq << " back=" << back;
    }
}

TEST_P(FormatProperties, ConversionLatticeThroughDouble)
{
    const Format f = GetParam();
    Rng rng(47);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t a = randomBits(rng, f);
        if (isNaN(f, a))
            continue;
        // Widening to binary64 and back is the identity for every
        // narrower format.
        const std::uint64_t wide = fpConvertSilent(kDouble, f, a);
        EXPECT_EQ(fpConvertSilent(f, kDouble, wide), a);
    }
}

TEST_P(FormatProperties, NaNPropagation)
{
    const Format f = GetParam();
    const std::uint64_t nan = quietNaN(f);
    const std::uint64_t x = one(f);
    EXPECT_TRUE(isNaN(f, fpAdd(f, nan, x)));
    EXPECT_TRUE(isNaN(f, fpSub(f, x, nan)));
    EXPECT_TRUE(isNaN(f, fpMul(f, nan, x)));
    EXPECT_TRUE(isNaN(f, fpDiv(f, nan, x)));
    EXPECT_TRUE(isNaN(f, fpFma(f, nan, x, x)));
    EXPECT_TRUE(isNaN(f, fpFma(f, x, x, nan)));
    EXPECT_TRUE(isNaN(f, fpSqrt(f, nan)));
    EXPECT_FALSE(fpEqual(f, nan, nan));
    EXPECT_FALSE(fpLess(f, nan, x));
}

TEST_P(FormatProperties, SubnormalsAreGradual)
{
    const Format f = GetParam();
    // min normal / 2 is the top half of the subnormal range, not 0.
    const std::uint64_t min_normal = packFields(f, false, 1, 0);
    const std::uint64_t half_val = fpFromDouble(f, 0.5);
    const std::uint64_t r = fpMul(f, min_normal, half_val);
    EXPECT_EQ(classify(f, r), FpClass::Subnormal);
    // Summing two smallest subnormals is exact.
    const std::uint64_t tiny = packFields(f, false, 0, 1);
    EXPECT_EQ(fpAdd(f, tiny, tiny), packFields(f, false, 0, 2));
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, FormatProperties,
    ::testing::Values(kHalf, kBfloat16, kTf32, kSingle, kDouble),
    [](const auto &info) {
        const Format f = info.param;
        if (f == kHalf) return std::string("half");
        if (f == kBfloat16) return std::string("bfloat16");
        if (f == kTf32) return std::string("tf32");
        if (f == kSingle) return std::string("single");
        return std::string("double");
    });

// ---------------------------------------------------------------
// Exhaustive binary16 sweeps
// ---------------------------------------------------------------

TEST(ExhaustiveHalf, SqrtAgainstHostForEveryPattern)
{
    for (std::uint64_t bits = 0; bits < 0x10000; ++bits) {
        const double v = fpToDouble(kHalf, bits);
        const std::uint64_t want =
            fpConvertSilent(kHalf, kDouble,
                            std::bit_cast<std::uint64_t>(
                                std::sqrt(v)));
        const std::uint64_t got = fpSqrt(kHalf, bits);
        if (isNaN(kHalf, want) && isNaN(kHalf, got))
            continue;
        ASSERT_EQ(want, got) << "bits=" << bits;
    }
}

TEST(ExhaustiveHalf, ConversionRoundTripEveryPattern)
{
    for (std::uint64_t bits = 0; bits < 0x10000; ++bits) {
        if (isNaN(kHalf, bits))
            continue;
        EXPECT_EQ(fpConvertSilent(
                      kHalf, kSingle,
                      fpConvertSilent(kSingle, kHalf, bits)),
                  bits);
    }
}

TEST(ExhaustiveHalf, NegationIsInvolutiveEveryPattern)
{
    for (std::uint64_t bits = 0; bits < 0x10000; ++bits)
        ASSERT_EQ(fpNeg(kHalf, fpNeg(kHalf, bits)), bits);
}

TEST(ExhaustiveHalf, AddOneAgainstHostForEveryPattern)
{
    const std::uint64_t one_h = one(kHalf);
    for (std::uint64_t bits = 0; bits < 0x10000; ++bits) {
        const double v = fpToDouble(kHalf, bits);
        const std::uint64_t want =
            fpConvertSilent(kHalf, kDouble,
                            std::bit_cast<std::uint64_t>(v + 1.0));
        const std::uint64_t got = fpAdd(kHalf, bits, one_h);
        if (isNaN(kHalf, want) && isNaN(kHalf, got))
            continue;
        ASSERT_EQ(want, got) << "bits=" << bits;
    }
}

// ---------------------------------------------------------------
// bfloat16-specific behaviour
// ---------------------------------------------------------------

TEST(Bfloat16, RangeMatchesSingleButPrecisionIsCoarse)
{
    // 1e38 is representable (unlike binary16)...
    const std::uint64_t big = fpFromDouble(kBfloat16, 1e38);
    EXPECT_TRUE(isFinite(kBfloat16, big));
    EXPECT_NEAR(fpToDouble(kBfloat16, big) / 1e38, 1.0, 0.01);
    // ...but 1 + 2^-10 is not distinguishable from 1.
    EXPECT_EQ(fpFromDouble(kBfloat16, 1.0009765625), one(kBfloat16));
    // Truncating single -> bfloat16 keeps the top 7 mantissa bits.
    EXPECT_EQ(fpConvertSilent(kBfloat16, kSingle,
                              fpFromDouble(kSingle, 3.140625)),
              fpFromDouble(kBfloat16, 3.140625));
}

TEST(Bfloat16, WorkloadsRunAtBfloat16)
{
    auto w = workloads::makeWorkload("mxm", Precision::Bfloat16, 0.1);
    w->reset(5);
    workloads::ExecutionEnv env;
    w->execute(env);
    const auto out = w->output();
    for (std::size_t i = 0; i < out.count; ++i)
        EXPECT_TRUE(isFinite(kBfloat16, out.get(i)));
}

} // namespace
} // namespace mparch::fp

namespace mparch::fp {
namespace {

TEST(FpDescribe, RendersEveryClass)
{
    EXPECT_EQ(fpDescribe(kHalf, quietNaN(kHalf)), "nan");
    EXPECT_EQ(fpDescribe(kHalf, infinity(kHalf, true)), "-inf");
    EXPECT_EQ(fpDescribe(kHalf, zero(kHalf, false)), "+0 (zero)");
    EXPECT_EQ(fpDescribe(kHalf, one(kHalf)), "+1.0p+0 (normal)");
    EXPECT_EQ(fpDescribe(kHalf, fpFromDouble(kHalf, -1.5)),
              "-1.1p+0 (normal)");
    EXPECT_EQ(fpDescribe(kHalf, fpFromDouble(kHalf, 0x1.8p-3)),
              "+1.1p-3 (normal)");
    // Smallest half subnormal: 0.0000000001 x 2^-14.
    EXPECT_EQ(fpDescribe(kHalf, packFields(kHalf, false, 0, 1)),
              "+0.0000000001p-14 (subnormal)");
    // Round-trippable across formats.
    EXPECT_EQ(fpDescribe(kDouble, fpFromDouble(kDouble, 2.0)),
              "+1.0p+1 (normal)");
}

TEST(FaultModelWordBurst, FlipsSameBitInAdjacentWords)
{
    auto w = workloads::makeWorkload("mxm", Precision::Half, 0.1);
    fault::CampaignConfig config;
    config.trials = 200;
    config.model = fault::FaultModel::WordBurst;
    const auto r = fault::runMemoryCampaign(*w, config);
    EXPECT_EQ(r.trials, 200u);
    EXPECT_EQ(r.masked + r.sdc + r.due + r.detected, r.trials);
    // A 4-word burst propagates at least as often as a single flip.
    fault::CampaignConfig single = config;
    single.model = fault::FaultModel::SingleBitFlip;
    const auto rs = fault::runMemoryCampaign(*w, single);
    EXPECT_GE(r.avfSdc(), rs.avfSdc() - 0.05);
}

} // namespace
} // namespace mparch::fp
