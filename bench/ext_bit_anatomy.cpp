/**
 * @file
 * Extension: bit-position-resolved vulnerability.
 *
 * The paper's introduction states its central hypothesis in terms of
 * bit positions: "a fault on 64 bits could affect only the least
 * significant positions of the mantissa, resulting in a value still
 * sufficiently close to the expected one; as precision is reduced,
 * the probability for the fault to change the output significantly
 * is expected to increase." This bench measures that directly:
 * single-bit CAROL-FI flips on the GEMM, resolved by the IEEE754
 * field the flipped bit belongs to (sign / exponent / high mantissa
 * / low mantissa), reporting each field's AVF and how often its SDCs
 * exceed 1% deviation.
 *
 * Expected shape: exponent flips are near-certain, large SDCs at
 * every precision; low-mantissa flips are near-harmless in double
 * but increasingly consequential as the mantissa shrinks — in half,
 * "low mantissa" is only 5 bits, all of which matter.
 */

#include "bench_util.hh"

#include "fault/campaign.hh"

namespace {

using namespace mparch;
using fault::FaultAnatomy;

const char *
fieldName(FaultAnatomy::Field f)
{
    switch (f) {
      case FaultAnatomy::Field::Sign:         return "sign";
      case FaultAnatomy::Field::Exponent:     return "exponent";
      case FaultAnatomy::Field::MantissaHigh: return "mantissa-high";
      case FaultAnatomy::Field::MantissaLow:  return "mantissa-low";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mparch;
    const auto args = bench::parseArgs(argc, argv, 1500, 0.15);
    bench::banner("Extension: vulnerability by IEEE754 bit field",
                  "exponent flips always critical; low-mantissa "
                  "flips harmless in double, consequential in half");

    Table table({"precision", "field", "flips", "avf-sdc",
                 "critical(>1%) share of SDCs"});
    for (auto p : fp::allPrecisions) {
        auto w = workloads::makeWorkload("mxm", p, args.scale);
        fault::CampaignConfig config;
        config.trials = args.trials;
        config.recordAnatomy = true;
        const auto r = fault::runMemoryCampaign(*w, config);

        for (auto field : {FaultAnatomy::Field::Sign,
                           FaultAnatomy::Field::Exponent,
                           FaultAnatomy::Field::MantissaHigh,
                           FaultAnatomy::Field::MantissaLow}) {
            std::uint64_t flips = 0, sdc = 0, critical = 0;
            for (const auto &a : r.anatomy) {
                if (a.field != field)
                    continue;
                ++flips;
                if (a.outcome == fault::OutcomeKind::Sdc) {
                    ++sdc;
                    critical += a.maxRel > 0.01;
                }
            }
            table.row()
                .cell(std::string(fp::precisionName(p)))
                .cell(fieldName(field))
                .cell(static_cast<std::int64_t>(flips))
                .cell(flips ? static_cast<double>(sdc) / flips : 0.0,
                      3)
                .cell(sdc ? static_cast<double>(critical) / sdc
                          : 0.0,
                      3);
        }
    }
    table.print(std::cout);

    bench::runRegisteredBenchmarks(&argc, argv);
    return 0;
}
